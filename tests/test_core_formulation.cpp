#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/baselines.hpp"
#include "core/bounds.hpp"
#include "core/formulation.hpp"
#include "milp/solver.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"

namespace sparcs::core {
namespace {

std::vector<graph::DesignPoint> two_points() {
  return {{"fast", 80, 100}, {"small", 40, 220}};
}

/// Diamond a -> {b, c} -> d with two design points per task.
graph::TaskGraph diamond() {
  graph::TaskGraph g("diamond");
  const graph::TaskId a = g.add_task("a", two_points(), 4);
  const graph::TaskId b = g.add_task("b", two_points());
  const graph::TaskId c = g.add_task("c", two_points());
  const graph::TaskId d = g.add_task("d", two_points(), 0, 4);
  g.add_edge(a, b, 2);
  g.add_edge(a, c, 2);
  g.add_edge(b, d, 2);
  g.add_edge(c, d, 2);
  return g;
}

PartitionedDesign solve_feasible(const IlpFormulation& form) {
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  EXPECT_TRUE(s.has_solution()) << to_string(s.status);
  return form.decode(s.values);
}

TEST(FormulationTest, FeasibleSolutionDecodesAndValidates) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 200, 64, 10);
  IlpFormulation form(g, dev, 2, max_latency(g, dev, 2),
                      min_latency(g, dev, 2));
  const PartitionedDesign design = solve_feasible(form);
  EXPECT_TRUE(validate_design(g, dev, design).ok);
  EXPECT_LE(design.total_latency_ns, max_latency(g, dev, 2) + 1e-6);
}

TEST(FormulationTest, SingleTaskSinglePartition) {
  graph::TaskGraph g("one");
  g.add_task("only", two_points());
  const arch::Device dev = arch::custom("d", 100, 64, 10);
  IlpFormulation form(g, dev, 1, 1000, 0);
  const PartitionedDesign design = solve_feasible(form);
  EXPECT_EQ(design.num_partitions_used, 1);
  EXPECT_TRUE(validate_design(g, dev, design).ok);
}

TEST(FormulationTest, AreaPressureForcesMultiplePartitions) {
  const graph::TaskGraph g = diamond();
  // Only one small design point fits per partition (Rmax = 45).
  const arch::Device dev = arch::custom("d", 45, 64, 10);
  IlpFormulation form(g, dev, 4, max_latency(g, dev, 4),
                      min_latency(g, dev, 4));
  const PartitionedDesign design = solve_feasible(form);
  EXPECT_EQ(design.num_partitions_used, 4);
  for (const TaskAssignment& a : design.assignment) {
    // Only the small (40 CLB) point fits.
    EXPECT_DOUBLE_EQ(
        g.task(0).design_points[static_cast<std::size_t>(a.design_point)].area,
        40.0);
  }
}

TEST(FormulationTest, InfeasibleWhenLatencyWindowTooTight) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 200, 64, 10);
  // Even the all-fast critical path costs 300 + reconfig; ask for 200.
  IlpFormulation form(g, dev, 2, 200.0, 0.0);
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kInfeasible);
}

TEST(FormulationTest, InfeasibleWhenAreaImpossible) {
  const graph::TaskGraph g = diamond();
  // Total min area = 160 > 1 partition x 100.
  const arch::Device dev = arch::custom("d", 100, 64, 10);
  IlpFormulation form(g, dev, 1, 1e6, 0.0);
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kInfeasible);
  // The total-area cut lets the solver prove this without branching.
  EXPECT_EQ(s.nodes_explored, 0);
}

TEST(FormulationTest, MemoryConstraintForcesColocation) {
  // Chain a -> b with a huge transfer: separating them needs 50 units of
  // memory, but the device only has 10, so they must share a partition.
  graph::TaskGraph g("mem");
  const graph::TaskId a = g.add_task("a", {{"m", 30, 100}});
  const graph::TaskId b = g.add_task("b", {{"m", 30, 100}});
  g.add_edge(a, b, 50);
  const arch::Device dev = arch::custom("d", 100, 10, 10);
  IlpFormulation form(g, dev, 2, 1e6, 0.0);
  const PartitionedDesign design = solve_feasible(form);
  EXPECT_EQ(design.assignment[static_cast<std::size_t>(a)].partition,
            design.assignment[static_cast<std::size_t>(b)].partition);
}

TEST(FormulationTest, MemoryConstraintDetectsInfeasibility) {
  // Same chain but the tasks cannot share a partition (area) and cannot be
  // separated (memory): infeasible.
  graph::TaskGraph g("mem2");
  const graph::TaskId a = g.add_task("a", {{"m", 80, 100}});
  const graph::TaskId b = g.add_task("b", {{"m", 80, 100}});
  g.add_edge(a, b, 50);
  const arch::Device dev = arch::custom("d", 100, 10, 10);
  IlpFormulation form(g, dev, 2, 1e6, 0.0);
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kInfeasible);
}

TEST(FormulationTest, EnvironmentDataCountsAgainstMemory) {
  graph::TaskGraph g("env");
  g.add_task("a", {{"m", 30, 100}}, /*env_in=*/20);
  g.add_task("b", {{"m", 30, 100}}, /*env_in=*/20);
  const arch::Device dev = arch::custom("d", 100, 30, 10);
  // Both env inputs (40 units) alive during partition 1 exceed M_max = 30,
  // regardless of placement: infeasible even with 2 partitions? No —
  // placing b in partition 2 keeps its input alive during P1 as well under
  // our conservative load-ahead model, so this must be infeasible.
  IlpFormulation form(g, dev, 2, 1e6, 0.0);
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kInfeasible);
}

TEST(FormulationTest, OrderFormsAgree) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 90, 64, 10);
  for (int n = 2; n <= 3; ++n) {
    FormulationOptions pairwise;
    pairwise.order_form = FormulationOptions::OrderForm::kPairwise;
    FormulationOptions aggregated;
    aggregated.order_form = FormulationOptions::OrderForm::kAggregated;
    IlpFormulation f1(g, dev, n, max_latency(g, dev, n),
                      min_latency(g, dev, n), pairwise);
    IlpFormulation f2(g, dev, n, max_latency(g, dev, n),
                      min_latency(g, dev, n), aggregated);
    f1.set_latency_objective();
    f2.set_latency_objective();
    const milp::MilpSolution s1 = milp::Solver(f1.model(), milp::optimality_params()).solve();
    const milp::MilpSolution s2 = milp::Solver(f2.model(), milp::optimality_params()).solve();
    ASSERT_EQ(s1.status, milp::SolveStatus::kOptimal);
    ASSERT_EQ(s2.status, milp::SolveStatus::kOptimal);
    EXPECT_NEAR(s1.objective, s2.objective, 1e-6) << "N=" << n;
  }
}

TEST(FormulationTest, LatencyFormsAgree) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 200, 64, 10);
  for (int n = 1; n <= 3; ++n) {
    FormulationOptions path;
    path.latency_form = FormulationOptions::LatencyForm::kPathBased;
    FormulationOptions flow;
    flow.latency_form = FormulationOptions::LatencyForm::kFlowBased;
    IlpFormulation f1(g, dev, n, max_latency(g, dev, n),
                      min_latency(g, dev, n), path);
    IlpFormulation f2(g, dev, n, max_latency(g, dev, n),
                      min_latency(g, dev, n), flow);
    f1.set_latency_objective();
    f2.set_latency_objective();
    const milp::MilpSolution s1 = milp::Solver(f1.model(), milp::optimality_params()).solve();
    const milp::MilpSolution s2 = milp::Solver(f2.model(), milp::optimality_params()).solve();
    ASSERT_EQ(s1.status, milp::SolveStatus::kOptimal);
    ASSERT_EQ(s2.status, milp::SolveStatus::kOptimal);
    // The decoded designs must agree on real latency (d_p values may differ
    // in slack, so compare recomputed designs).
    const PartitionedDesign d1 = f1.decode(s1.values);
    const PartitionedDesign d2 = f2.decode(s2.values);
    EXPECT_NEAR(d1.total_latency_ns, d2.total_latency_ns, 1e-6) << "N=" << n;
  }
}

TEST(FormulationTest, OptimalMatchesExhaustiveEnumeration) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 120, 64, 30);
  const int n = 3;
  IlpFormulation form(g, dev, n, max_latency(g, dev, n),
                      min_latency(g, dev, n));
  form.set_latency_objective();
  const milp::MilpSolution s = milp::Solver(form.model(), milp::optimality_params()).solve();
  ASSERT_EQ(s.status, milp::SolveStatus::kOptimal);
  const PartitionedDesign ilp_best = form.decode(s.values);

  const auto brute = exhaustive_optimal(g, dev, n);
  ASSERT_TRUE(brute.has_value());
  EXPECT_NEAR(ilp_best.total_latency_ns, brute->total_latency_ns, 1e-6);
}

TEST(FormulationTest, StrengtheningCutsPreserveFeasibilitySet) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 120, 64, 30);
  for (const bool cuts : {false, true}) {
    FormulationOptions options;
    options.strengthening_cuts = cuts;
    IlpFormulation form(g, dev, 2, max_latency(g, dev, 2),
                        min_latency(g, dev, 2), options);
    form.set_latency_objective();
    const milp::MilpSolution s = milp::Solver(form.model(), milp::optimality_params()).solve();
    ASSERT_EQ(s.status, milp::SolveStatus::kOptimal);
    const PartitionedDesign best = form.decode(s.values);
    // Optimal latency must be identical with and without cuts (538? value
    // asserted indirectly through the exhaustive check above); here we just
    // require both runs agree.
    static double reference = -1.0;
    if (reference < 0) {
      reference = best.total_latency_ns;
    } else {
      EXPECT_NEAR(best.total_latency_ns, reference, 1e-6);
    }
  }
}

TEST(FormulationTest, EtaReflectsUsedPartitions) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 400, 64, 1000);
  // Plenty of area: everything fits in one partition even with N = 3, and
  // the reconfiguration cost pushes the optimum to eta = 1.
  IlpFormulation form(g, dev, 3, max_latency(g, dev, 3), 0.0);
  form.set_latency_objective();
  const milp::MilpSolution s = milp::Solver(form.model(), milp::optimality_params()).solve();
  ASSERT_EQ(s.status, milp::SolveStatus::kOptimal);
  const PartitionedDesign design = form.decode(s.values);
  EXPECT_EQ(design.num_partitions_used, 1);
}

TEST(FormulationTest, DminWindowExcludesFastSolutions) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 400, 64, 10);
  // Force the search into the region [700, inf): the all-fast one-partition
  // solution (300 + 10) is excluded by eq. (10).
  IlpFormulation form(g, dev, 1, 1e6, 700.0);
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  ASSERT_TRUE(s.has_solution());
  // d_1 must carry at least 700 - 10 of latency budget; the decoded design
  // may be faster in reality, but the model's d/eta satisfied the window.
  EXPECT_TRUE(validate_design(g, dev, form.decode(s.values)).ok);
}

TEST(FormulationTest, RejectsEmptyWindow) {
  const graph::TaskGraph g = diamond();
  const arch::Device dev = arch::custom("d", 400, 64, 10);
  EXPECT_THROW(IlpFormulation(g, dev, 2, 100.0, 200.0),
               InvalidArgumentError);
  EXPECT_THROW(IlpFormulation(g, dev, 0, 200.0, 100.0),
               InvalidArgumentError);
}

TEST(FormulationTest, ArFilterModelStats) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  IlpFormulation form(g, dev, 3, max_latency(g, dev, 3),
                      min_latency(g, dev, 3));
  const milp::ModelStats stats = form.model().stats();
  // 6 tasks x 3 partitions x {3,1,2,2,1,1} points = 30 Y vars, plus w, d,
  // eta and the cut variables.
  EXPECT_GE(stats.num_binary, 30);
  EXPECT_GE(stats.num_constraints, 20);
  EXPECT_GT(stats.num_nonzeros, 100);
}

}  // namespace
}  // namespace sparcs::core

// Tests for LP-format round trips (writer -> reader) and the standalone
// presolve pass.
#include <gtest/gtest.h>

#include "brute_force.hpp"
#include "milp/lp_reader.hpp"
#include "milp/lp_writer.hpp"
#include "milp/presolve.hpp"
#include "milp/solver.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sparcs::milp {
namespace {

Model sample_model() {
  Model m("sample");
  const VarId x = m.add_binary("x");
  const VarId y = m.add_integer(0, 7, "y");
  const VarId z = m.add_continuous(-2, 12, "z");
  m.add_constraint(2.0 * LinExpr(x) + LinExpr(y) - 0.5 * LinExpr(z) <= 6.0,
                   "row1");
  m.add_constraint(LinExpr(y) + LinExpr(z) >= 1.0, "row2");
  m.add_constraint(LinExpr(x) + LinExpr(y) == 3.0, "row3");
  m.set_objective(LinExpr(x) * 4.0 + LinExpr(y) - LinExpr(z));
  return m;
}

TEST(LpRoundTripTest, PreservesStructure) {
  const Model original = sample_model();
  const Model parsed = read_lp_string(to_lp_string(original));
  EXPECT_EQ(parsed.num_vars(), original.num_vars());
  EXPECT_EQ(parsed.num_constraints(), original.num_constraints());
  const ModelStats a = original.stats();
  const ModelStats b = parsed.stats();
  EXPECT_EQ(a.num_binary, b.num_binary);
  EXPECT_EQ(a.num_integer, b.num_integer);
  EXPECT_EQ(a.num_continuous, b.num_continuous);
  EXPECT_EQ(a.num_nonzeros, b.num_nonzeros);
}

TEST(LpRoundTripTest, PreservesOptimum) {
  const Model original = sample_model();
  const Model parsed = read_lp_string(to_lp_string(original));
  const MilpSolution s1 = Solver(original, optimality_params()).solve();
  const MilpSolution s2 = Solver(parsed, optimality_params()).solve();
  ASSERT_EQ(s1.status, SolveStatus::kOptimal);
  ASSERT_EQ(s2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s1.objective, s2.objective, 1e-6);
}

TEST(LpRoundTripTest, PreservesCoefficientsBitExactly) {
  // Coefficients with no short decimal representation: the writer must emit
  // the shortest round-trip form (std::to_chars) so the reloaded model is
  // bit-identical, not merely close. A fixed-precision trim would perturb
  // every one of these.
  Model m("precision");
  const VarId x = m.add_continuous(1.0 / 3.0, 1e7 + 0.25, "x");
  const VarId y = m.add_continuous(-2.0, 12.0, "y");
  m.add_constraint(0.1 * LinExpr(x) + 2e-7 * LinExpr(y) <= 1e-9, "tiny");
  m.add_constraint((1.0 / 3.0) * LinExpr(x) - 1.2345678901234567 * LinExpr(y) >=
                       -3.0000000000000004,
                   "dense");
  m.set_objective(0.30000000000000004 * LinExpr(x) + 1e22 * LinExpr(y));

  const Model parsed = read_lp_string(to_lp_string(m));
  ASSERT_EQ(parsed.num_vars(), m.num_vars());
  ASSERT_EQ(parsed.num_constraints(), m.num_constraints());
  for (VarId v = 0; v < m.num_vars(); ++v) {
    EXPECT_EQ(parsed.var(v).lb, m.var(v).lb) << "lb of var " << v;
    EXPECT_EQ(parsed.var(v).ub, m.var(v).ub) << "ub of var " << v;
  }
  for (ConstraintId c = 0; c < m.num_constraints(); ++c) {
    const ConstraintInfo& a = m.constraint(c);
    const ConstraintInfo& b = parsed.constraint(c);
    EXPECT_EQ(b.rhs, a.rhs) << "rhs of row " << c;
    ASSERT_EQ(b.terms.size(), a.terms.size());
    for (std::size_t t = 0; t < a.terms.size(); ++t) {
      EXPECT_EQ(b.terms[t].coef, a.terms[t].coef)
          << "row " << c << " term " << t;
    }
  }
  ASSERT_EQ(parsed.objective().terms().size(), m.objective().terms().size());
  for (std::size_t t = 0; t < m.objective().terms().size(); ++t) {
    EXPECT_EQ(parsed.objective().terms()[t].coef,
              m.objective().terms()[t].coef)
        << "objective term " << t;
  }
}

TEST(LpReaderTest, ParsesHandwrittenModel) {
  const Model m = read_lp_string(R"(\ demo
Maximize
 obj: 3 a + 5 b
Subject To
 c1: a <= 4
 c2: 2 b <= 12
 c3: 3 a + 2 b <= 18
End
)");
  EXPECT_EQ(m.num_vars(), 2);
  EXPECT_EQ(m.num_constraints(), 3);
  EXPECT_FALSE(m.minimize());
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
}

TEST(LpReaderTest, ParsesBoundsSection) {
  const Model m = read_lp_string(R"(Minimize
 obj: x + y + z
Subject To
 c1: x + y + z >= 1
Bounds
 -3 <= x <= 9
 y >= 2
 z free
End
)");
  const VarId x = 0, y = 1, z = 2;
  EXPECT_DOUBLE_EQ(m.var(x).lb, -3);
  EXPECT_DOUBLE_EQ(m.var(x).ub, 9);
  EXPECT_DOUBLE_EQ(m.var(y).lb, 2);
  EXPECT_TRUE(std::isinf(m.var(z).lb));
  EXPECT_TRUE(std::isinf(m.var(z).ub));
}

TEST(LpReaderTest, ParsesIntegralitySections) {
  const Model m = read_lp_string(R"(Minimize
 obj: x + y
Subject To
 c1: x + y >= 1
General
 y
Binary
 x
End
)");
  EXPECT_EQ(m.var(0).type, VarType::kBinary);
  EXPECT_EQ(m.var(1).type, VarType::kInteger);
}

TEST(LpReaderTest, NegativeCoefficientsAndImplicitOnes) {
  const Model m = read_lp_string(R"(Minimize
 obj: - x + 2.5 y
Subject To
 c1: x - y <= 3
End
)");
  ASSERT_EQ(m.objective().terms().size(), 2u);
  EXPECT_DOUBLE_EQ(m.objective().terms()[0].coef, -1.0);
  EXPECT_DOUBLE_EQ(m.objective().terms()[1].coef, 2.5);
  EXPECT_DOUBLE_EQ(m.constraint(0).terms[1].coef, -1.0);
}

TEST(LpReaderTest, RejectsGarbage) {
  EXPECT_THROW(read_lp_string(""), InvalidArgumentError);
  EXPECT_THROW(read_lp_string("hello world"), InvalidArgumentError);
}

TEST(PresolveTest, FixesAndSubstitutes) {
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  const VarId z = m.add_binary("z");
  m.add_constraint(LinExpr(x) >= 1.0, "force_x");           // fixes x = 1
  m.add_constraint(LinExpr(x) + LinExpr(y) <= 1.0, "pair"); // then y = 0
  m.add_constraint(LinExpr(y) + LinExpr(z) <= 1.0, "free"); // z stays free
  const PresolveResult r = presolve(m);
  ASSERT_TRUE(r.model.has_value());
  EXPECT_GE(r.stats.vars_fixed, 2);
  EXPECT_DOUBLE_EQ(r.model->var(x).lb, 1.0);
  EXPECT_DOUBLE_EQ(r.model->var(y).ub, 0.0);
  EXPECT_DOUBLE_EQ(r.model->var(z).ub, 1.0);
  EXPECT_FALSE(r.model->var(z).lb == r.model->var(z).ub);
  // The two forcing rows become redundant after substitution.
  EXPECT_GE(r.stats.rows_dropped, 2);
}

TEST(PresolveTest, DetectsInfeasibility) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint(LinExpr(x) >= 1.0, "a");
  m.add_constraint(LinExpr(x) <= 0.0, "b");
  const PresolveResult r = presolve(m);
  EXPECT_TRUE(r.stats.infeasible);
  EXPECT_FALSE(r.model.has_value());
}

TEST(PresolveTest, PreservesOptimumOnRandomModels) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Model m;
    for (int i = 0; i < 8; ++i) m.add_binary("x" + std::to_string(i));
    for (int r = 0; r < 5; ++r) {
      LinExpr lhs;
      for (VarId v = 0; v < 8; ++v) {
        lhs += static_cast<double>(rng.uniform_int(-3, 5)) * LinExpr(v);
      }
      m.add_constraint(lhs, Sense::kLessEqual,
                       static_cast<double>(rng.uniform_int(0, 9)),
                       "r" + std::to_string(r));
    }
    LinExpr obj;
    for (VarId v = 0; v < 8; ++v) {
      obj += static_cast<double>(rng.uniform_int(-4, 6)) * LinExpr(v);
    }
    m.set_objective(obj);

    const auto direct = testing::brute_force_best_objective(m);
    const PresolveResult r = presolve(m);
    if (r.stats.infeasible) {
      EXPECT_FALSE(direct.has_value()) << "seed " << seed;
      continue;
    }
    const auto reduced = testing::brute_force_best_objective(*r.model);
    ASSERT_EQ(direct.has_value(), reduced.has_value()) << "seed " << seed;
    if (direct) {
      EXPECT_NEAR(*direct, *reduced, 1e-9) << "seed " << seed;
    }
  }
}

TEST(PresolveTest, ReducedModelRoundTripsThroughLpFormat) {
  const Model m = sample_model();
  const PresolveResult r = presolve(m);
  ASSERT_TRUE(r.model.has_value());
  const Model parsed = read_lp_string(to_lp_string(*r.model));
  const MilpSolution s1 = Solver(m, optimality_params()).solve();
  const MilpSolution s2 = Solver(parsed, optimality_params()).solve();
  ASSERT_EQ(s1.status, SolveStatus::kOptimal);
  ASSERT_EQ(s2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s1.objective, s2.objective, 1e-6);
}

}  // namespace
}  // namespace sparcs::milp

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/app.hpp"

namespace sparcs::cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, NoArgsPrintsUsage) {
  const CliRun r = run_cli({});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownOptionFails) {
  const CliRun r = run_cli({"--workload", "ar", "--bogus"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(CliTest, WorkloadAndFileAreExclusive) {
  const CliRun r = run_cli({"somefile.tg", "--workload", "ar"});
  EXPECT_EQ(r.exit_code, 4);
}

TEST(CliTest, RunsArWorkload) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_NE(r.out.find("partitions used"), std::string::npos);
  EXPECT_NE(r.out.find("Dmax(ns)"), std::string::npos);  // trace table
}

TEST(CliTest, QuietSuppressesTrace) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.find("Dmax(ns)"), std::string::npos);
}

TEST(CliTest, SimulateAddsGantt) {
  const CliRun r = run_cli({"--workload", "ewf", "--ct", "50", "--delta",
                            "50", "--quiet", "--simulate"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("makespan"), std::string::npos);
}

TEST(CliTest, OptimalReference) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "10", "--quiet",
                            "--optimal"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("optimal reference:"), std::string::npos);
}

TEST(CliTest, ReadsGraphFileWithDevice) {
  const std::string path = ::testing::TempDir() + "/cli_demo.tg";
  {
    std::ofstream file(path);
    file << R"(graph filedemo
device board 200 64 50
task a 8 0
point a fast 90 120
point a small 50 260
task b 0 4
point b only 60 150
edge a b 8
)";
  }
  const CliRun r = run_cli({path, "--delta", "10", "--quiet"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("filedemo"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MissingFileFails) {
  const CliRun r = run_cli({"/nonexistent/path.tg"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, ExportsDotAndCsv) {
  const std::string dot = ::testing::TempDir() + "/cli_out.dot";
  const std::string csv = ::testing::TempDir() + "/cli_out.csv";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--dot", dot, "--csv", csv});
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream dot_in(dot), csv_in(csv);
  EXPECT_TRUE(dot_in.good());
  EXPECT_TRUE(csv_in.good());
  std::string first_line;
  std::getline(csv_in, first_line);
  EXPECT_NE(first_line.find("N,iteration"), std::string::npos);
  std::remove(dot.c_str());
  std::remove(csv.c_str());
}

TEST(CliTest, WritesMetricsAndTraceJson) {
  const std::string metrics = ::testing::TempDir() + "/cli_metrics.json";
  const std::string trace = ::testing::TempDir() + "/cli_trace.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--metrics-json", metrics, "--trace-json", trace});
  EXPECT_EQ(r.exit_code, 0) << r.err;

  std::ifstream metrics_in(metrics);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  EXPECT_EQ(metrics_text.str().front(), '{');
  EXPECT_NE(metrics_text.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics_text.str().find("milp.solves"), std::string::npos);

  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_EQ(trace_text.str().front(), '[');
  EXPECT_NE(trace_text.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("milp::solve"), std::string::npos);
  EXPECT_NE(trace_text.str().find("Reduce_Latency"), std::string::npos);

  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

TEST(CliTest, TraceJsonIsEmittedEvenWhenLogsAreOff) {
  // Span emission must not depend on the log level: --trace-json writes the
  // file (with real spans in it) even under --quiet / --log-level off.
  const std::string trace = ::testing::TempDir() + "/cli_trace_quiet.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--log-level", "off", "--trace-json", trace});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(r.out.find("Dmax(ns)"), std::string::npos);  // table suppressed

  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NE(trace_text.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("milp::solve"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(CliTest, WritesReportJson) {
  const std::string report = ::testing::TempDir() + "/cli_report.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--report-json", report});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::ifstream report_in(report);
  ASSERT_TRUE(report_in.good());
  std::stringstream report_text;
  report_text << report_in.rdbuf();
  EXPECT_EQ(report_text.str().front(), '{');
  EXPECT_NE(report_text.str().find("\"feasible\": true"), std::string::npos);
  EXPECT_NE(report_text.str().find("\"trace\""), std::string::npos);
  EXPECT_NE(report_text.str().find("\"solver_stats\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliTest, ThreadsFlagIsAcceptedAndValidated) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--threads", "2"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);

  const CliRun bad = run_cli({"--workload", "ar", "--threads", "-1"});
  EXPECT_EQ(bad.exit_code, 4);
  EXPECT_NE(bad.err.find("--threads"), std::string::npos);
}

TEST(CliTest, LogLevelFlagControlsTraceTable) {
  const CliRun loud = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                               "64", "--ct", "50", "--delta", "20",
                               "--log-level", "warning"});
  EXPECT_EQ(loud.exit_code, 0);
  EXPECT_NE(loud.out.find("Dmax(ns)"), std::string::npos);

  const CliRun silent = run_cli({"--workload", "ar", "--rmax", "200",
                                 "--mmax", "64", "--ct", "50", "--delta",
                                 "20", "--log-level", "error"});
  EXPECT_EQ(silent.exit_code, 0);
  EXPECT_EQ(silent.out.find("Dmax(ns)"), std::string::npos);

  const CliRun bad = run_cli({"--workload", "ar", "--log-level", "verbose"});
  EXPECT_EQ(bad.exit_code, 4);
  EXPECT_NE(bad.err.find("unknown log level"), std::string::npos);
}

TEST(CliTest, InfeasibleDeviceReportsExitCode2) {
  // Memory too small for the AR filter's environment data.
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "1", "--ct", "50", "--delta", "20", "--quiet"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("no feasible"), std::string::npos);
}

TEST(CliTest, DeadlineFlagIsValidated) {
  const CliRun bad = run_cli({"--workload", "ar", "--deadline-sec", "0"});
  EXPECT_EQ(bad.exit_code, 4);
  EXPECT_NE(bad.err.find("--deadline-sec"), std::string::npos);
}

TEST(CliTest, GenerousDeadlineStillSucceeds) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--deadline-sec", "300"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_EQ(r.out.find("degraded"), std::string::npos);
}

TEST(CliTest, TightDeadlineReportsDegradedExitCode3) {
  // A sub-millisecond deadline cannot finish the sweep: the CLI must still
  // return (no hang), print the degradation summary, and exit 3. A fine
  // delta makes the unconstrained sweep long enough that expiry mid-run is
  // certain.
  const std::string report = ::testing::TempDir() + "/cli_degraded.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "0.05", "--quiet",
                            "--deadline-sec", "0.001", "--report-json",
                            report});
  EXPECT_EQ(r.exit_code, 3) << r.out << r.err;
  EXPECT_NE(r.out.find("degraded"), std::string::npos);

  std::ifstream report_in(report);
  ASSERT_TRUE(report_in.good());
  std::stringstream report_text;
  report_text << report_in.rdbuf();
  EXPECT_NE(report_text.str().find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(report_text.str().find("\"stages\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliTest, UsageDocumentsExitCodes) {
  const CliRun r = run_cli({});
  EXPECT_NE(r.err.find("exit codes"), std::string::npos);
  EXPECT_NE(r.err.find("--deadline-sec"), std::string::npos);
  EXPECT_NE(r.err.find("--telemetry-jsonl"), std::string::npos);
  EXPECT_NE(r.err.find("--search-tree-json"), std::string::npos);
  EXPECT_NE(r.err.find("--log-json"), std::string::npos);
}

TEST(CliTest, WritesTelemetryJsonl) {
  const std::string telemetry = ::testing::TempDir() + "/cli_telemetry.jsonl";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--telemetry-jsonl", telemetry,
                            "--telemetry-interval-ms", "20"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote " + telemetry), std::string::npos);

  std::ifstream in(telemetry);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  bool saw_start = false, saw_sample = false, saw_final = false;
  bool saw_stage = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    // Every record is a single-line JSON object.
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    if (line.find("\"type\": \"start\"") != std::string::npos) saw_start = true;
    if (line.find("\"type\": \"sample\"") != std::string::npos)
      saw_sample = true;
    if (line.find("\"type\": \"final\"") != std::string::npos) saw_final = true;
    if (line.find("\"trigger\": \"stage\"") != std::string::npos)
      saw_stage = true;
  }
  EXPECT_GE(lines, 3);
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_sample);
  EXPECT_TRUE(saw_final);
  EXPECT_TRUE(saw_stage);  // at least one sample per sweep stage transition
  std::remove(telemetry.c_str());
}

TEST(CliTest, TelemetryIntervalIsValidated) {
  const CliRun r = run_cli({"--workload", "ar", "--telemetry-jsonl", "x",
                            "--telemetry-interval-ms", "0"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("--telemetry-interval-ms"), std::string::npos);
}

TEST(CliTest, WritesSearchTreeDumps) {
  const std::string tree_json = ::testing::TempDir() + "/cli_tree.json";
  const std::string tree_dot = ::testing::TempDir() + "/cli_tree.dot";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--search-tree-json", tree_json,
                            "--search-tree-dot", tree_dot});
  EXPECT_EQ(r.exit_code, 0) << r.err;

  std::ifstream json_in(tree_json);
  ASSERT_TRUE(json_in.good());
  std::stringstream json_text;
  json_text << json_in.rdbuf();
  EXPECT_EQ(json_text.str().front(), '{');
  EXPECT_NE(json_text.str().find("\"nodes\""), std::string::npos);
  EXPECT_NE(json_text.str().find("\"recorded\""), std::string::npos);

  std::ifstream dot_in(tree_dot);
  ASSERT_TRUE(dot_in.good());
  std::stringstream dot_text;
  dot_text << dot_in.rdbuf();
  EXPECT_NE(dot_text.str().find("digraph"), std::string::npos);
  std::remove(tree_json.c_str());
  std::remove(tree_dot.c_str());
}

TEST(CliTest, WritesJsonLogsWithCorrelationIds) {
  const std::string logs = ::testing::TempDir() + "/cli_logs.jsonl";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--log-level", "debug", "--log-json", logs});
  EXPECT_EQ(r.exit_code, 0) << r.err;

  std::ifstream in(logs);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_corr = false;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_NE(line.find("\"msg\""), std::string::npos) << line;
    if (line.find("\"corr\"") != std::string::npos) saw_corr = true;
  }
  EXPECT_GT(lines, 0);
  // The per-probe debug statement runs inside a correlation scope, so at
  // least one record joins with the telemetry/span streams.
  EXPECT_TRUE(saw_corr);
  std::remove(logs.c_str());
}

TEST(CliTest, CheckpointFlagsAreValidated) {
  const CliRun no_file = run_cli({"--workload", "ar", "--resume"});
  EXPECT_EQ(no_file.exit_code, 4);
  EXPECT_NE(no_file.err.find("--resume needs --checkpoint"),
            std::string::npos);

  const CliRun bad_interval = run_cli(
      {"--workload", "ar", "--checkpoint", "x", "--checkpoint-interval-sec",
       "-1"});
  EXPECT_EQ(bad_interval.exit_code, 4);
  EXPECT_NE(bad_interval.err.find("--checkpoint-interval-sec"),
            std::string::npos);
}

TEST(CliTest, CheckpointIsWrittenAndResumable) {
  const std::string ckpt = ::testing::TempDir() + "/cli_ckpt.json";
  const CliRun first = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                                "64", "--ct", "50", "--delta", "20", "--quiet",
                                "--checkpoint", ckpt});
  EXPECT_EQ(first.exit_code, 0) << first.err;

  // The on-disk checkpoint is one valid CRC-sealed JSON document.
  std::ifstream in(ckpt);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"format\": \"sparcs-sweep-checkpoint\""),
            std::string::npos);
  EXPECT_NE(text.str().find("\"complete\": true"), std::string::npos);
  EXPECT_NE(text.str().find("\"crc32\":\""), std::string::npos);

  // Resuming the complete checkpoint reproduces the answer.
  const CliRun second = run_cli({"--workload", "ar", "--rmax", "200",
                                 "--mmax", "64", "--ct", "50", "--delta",
                                 "20", "--quiet", "--checkpoint", ckpt,
                                 "--resume"});
  EXPECT_EQ(second.exit_code, 0) << second.err;
  EXPECT_NE(second.out.find("resumed from checkpoint"), std::string::npos);
  EXPECT_NE(second.out.find("best:"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(CliTest, DamagedCheckpointWarnsAndRunsFresh) {
  const std::string ckpt = ::testing::TempDir() + "/cli_ckpt_bad.json";
  {
    std::ofstream os(ckpt);
    os << "{\"not\":\"a checkpoint\"}";
  }
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--checkpoint", ckpt, "--resume"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("warning: started fresh"), std::string::npos) << r.err;
  EXPECT_EQ(r.out.find("resumed from checkpoint"), std::string::npos);
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(CliTest, ArtifactWriteFailureYieldsExitCode6) {
  // A run that succeeds but cannot land a requested artifact must say so in
  // the exit code — not silently report success with a missing file.
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--report-json",
                            "/nonexistent_dir_sparcs/report.json"});
  EXPECT_EQ(r.exit_code, 6) << r.err;
  EXPECT_NE(r.err.find("warning: cannot write report"), std::string::npos)
      << r.err;
  // The degraded/infeasible codes still win over the artifact code.
  const CliRun infeasible = run_cli(
      {"--workload", "ar", "--rmax", "200", "--mmax", "1", "--ct", "50",
       "--delta", "20", "--quiet", "--report-json",
       "/nonexistent_dir_sparcs/report.json"});
  EXPECT_EQ(infeasible.exit_code, 2);
}

TEST(CliTest, UsageDocumentsCheckpointingAndSignals) {
  const CliRun r = run_cli({});
  EXPECT_NE(r.err.find("--checkpoint FILE"), std::string::npos);
  EXPECT_NE(r.err.find("--resume"), std::string::npos);
  EXPECT_NE(r.err.find("SIGINT/SIGTERM"), std::string::npos);
  EXPECT_NE(r.err.find("5  preempted"), std::string::npos);
  EXPECT_NE(r.err.find("6  an artifact"), std::string::npos);
}

TEST(CliTest, TelemetryStateResetsBetweenRuns) {
  // Two runs in one process: the guard must restore the disabled state, and
  // the second run's telemetry must start from a clean pipeline (its first
  // records must not leak the first run's stage or incumbent).
  const std::string first = ::testing::TempDir() + "/cli_t1.jsonl";
  const std::string second = ::testing::TempDir() + "/cli_t2.jsonl";
  ASSERT_EQ(run_cli({"--workload", "ar", "--rmax", "200", "--mmax", "64",
                     "--ct", "50", "--delta", "20", "--quiet",
                     "--telemetry-jsonl", first}).exit_code, 0);
  ASSERT_EQ(run_cli({"--workload", "ar", "--rmax", "200", "--mmax", "64",
                     "--ct", "50", "--delta", "20", "--quiet",
                     "--telemetry-jsonl", second}).exit_code, 0);
  std::ifstream in(second);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);  // the "start" record precedes any sample
  EXPECT_NE(line.find("\"type\": \"start\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"solves_completed\": 0"), std::string::npos) << line;
  std::remove(first.c_str());
  std::remove(second.c_str());
}

}  // namespace
}  // namespace sparcs::cli

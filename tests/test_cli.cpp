#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/app.hpp"

namespace sparcs::cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, NoArgsPrintsUsage) {
  const CliRun r = run_cli({});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownOptionFails) {
  const CliRun r = run_cli({"--workload", "ar", "--bogus"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(CliTest, WorkloadAndFileAreExclusive) {
  const CliRun r = run_cli({"somefile.tg", "--workload", "ar"});
  EXPECT_EQ(r.exit_code, 4);
}

TEST(CliTest, RunsArWorkload) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_NE(r.out.find("partitions used"), std::string::npos);
  EXPECT_NE(r.out.find("Dmax(ns)"), std::string::npos);  // trace table
}

TEST(CliTest, QuietSuppressesTrace) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.find("Dmax(ns)"), std::string::npos);
}

TEST(CliTest, SimulateAddsGantt) {
  const CliRun r = run_cli({"--workload", "ewf", "--ct", "50", "--delta",
                            "50", "--quiet", "--simulate"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("makespan"), std::string::npos);
}

TEST(CliTest, OptimalReference) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "10", "--quiet",
                            "--optimal"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("optimal reference:"), std::string::npos);
}

TEST(CliTest, ReadsGraphFileWithDevice) {
  const std::string path = ::testing::TempDir() + "/cli_demo.tg";
  {
    std::ofstream file(path);
    file << R"(graph filedemo
device board 200 64 50
task a 8 0
point a fast 90 120
point a small 50 260
task b 0 4
point b only 60 150
edge a b 8
)";
  }
  const CliRun r = run_cli({path, "--delta", "10", "--quiet"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("filedemo"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MissingFileFails) {
  const CliRun r = run_cli({"/nonexistent/path.tg"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, ExportsDotAndCsv) {
  const std::string dot = ::testing::TempDir() + "/cli_out.dot";
  const std::string csv = ::testing::TempDir() + "/cli_out.csv";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--dot", dot, "--csv", csv});
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream dot_in(dot), csv_in(csv);
  EXPECT_TRUE(dot_in.good());
  EXPECT_TRUE(csv_in.good());
  std::string first_line;
  std::getline(csv_in, first_line);
  EXPECT_NE(first_line.find("N,iteration"), std::string::npos);
  std::remove(dot.c_str());
  std::remove(csv.c_str());
}

TEST(CliTest, WritesMetricsAndTraceJson) {
  const std::string metrics = ::testing::TempDir() + "/cli_metrics.json";
  const std::string trace = ::testing::TempDir() + "/cli_trace.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--metrics-json", metrics, "--trace-json", trace});
  EXPECT_EQ(r.exit_code, 0) << r.err;

  std::ifstream metrics_in(metrics);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  EXPECT_EQ(metrics_text.str().front(), '{');
  EXPECT_NE(metrics_text.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics_text.str().find("milp.solves"), std::string::npos);

  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_EQ(trace_text.str().front(), '[');
  EXPECT_NE(trace_text.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("milp::solve"), std::string::npos);
  EXPECT_NE(trace_text.str().find("Reduce_Latency"), std::string::npos);

  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

TEST(CliTest, TraceJsonIsEmittedEvenWhenLogsAreOff) {
  // Span emission must not depend on the log level: --trace-json writes the
  // file (with real spans in it) even under --quiet / --log-level off.
  const std::string trace = ::testing::TempDir() + "/cli_trace_quiet.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--log-level", "off", "--trace-json", trace});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(r.out.find("Dmax(ns)"), std::string::npos);  // table suppressed

  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NE(trace_text.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("milp::solve"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(CliTest, WritesReportJson) {
  const std::string report = ::testing::TempDir() + "/cli_report.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--report-json", report});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::ifstream report_in(report);
  ASSERT_TRUE(report_in.good());
  std::stringstream report_text;
  report_text << report_in.rdbuf();
  EXPECT_EQ(report_text.str().front(), '{');
  EXPECT_NE(report_text.str().find("\"feasible\": true"), std::string::npos);
  EXPECT_NE(report_text.str().find("\"trace\""), std::string::npos);
  EXPECT_NE(report_text.str().find("\"solver_stats\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliTest, ThreadsFlagIsAcceptedAndValidated) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--threads", "2"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);

  const CliRun bad = run_cli({"--workload", "ar", "--threads", "-1"});
  EXPECT_EQ(bad.exit_code, 4);
  EXPECT_NE(bad.err.find("--threads"), std::string::npos);
}

TEST(CliTest, LogLevelFlagControlsTraceTable) {
  const CliRun loud = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                               "64", "--ct", "50", "--delta", "20",
                               "--log-level", "warning"});
  EXPECT_EQ(loud.exit_code, 0);
  EXPECT_NE(loud.out.find("Dmax(ns)"), std::string::npos);

  const CliRun silent = run_cli({"--workload", "ar", "--rmax", "200",
                                 "--mmax", "64", "--ct", "50", "--delta",
                                 "20", "--log-level", "error"});
  EXPECT_EQ(silent.exit_code, 0);
  EXPECT_EQ(silent.out.find("Dmax(ns)"), std::string::npos);

  const CliRun bad = run_cli({"--workload", "ar", "--log-level", "verbose"});
  EXPECT_EQ(bad.exit_code, 4);
  EXPECT_NE(bad.err.find("unknown log level"), std::string::npos);
}

TEST(CliTest, InfeasibleDeviceReportsExitCode2) {
  // Memory too small for the AR filter's environment data.
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "1", "--ct", "50", "--delta", "20", "--quiet"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("no feasible"), std::string::npos);
}

TEST(CliTest, DeadlineFlagIsValidated) {
  const CliRun bad = run_cli({"--workload", "ar", "--deadline-sec", "0"});
  EXPECT_EQ(bad.exit_code, 4);
  EXPECT_NE(bad.err.find("--deadline-sec"), std::string::npos);
}

TEST(CliTest, GenerousDeadlineStillSucceeds) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--deadline-sec", "300"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_EQ(r.out.find("degraded"), std::string::npos);
}

TEST(CliTest, TightDeadlineReportsDegradedExitCode3) {
  // A sub-millisecond deadline cannot finish the sweep: the CLI must still
  // return (no hang), print the degradation summary, and exit 3. A fine
  // delta makes the unconstrained sweep long enough that expiry mid-run is
  // certain.
  const std::string report = ::testing::TempDir() + "/cli_degraded.json";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "0.05", "--quiet",
                            "--deadline-sec", "0.001", "--report-json",
                            report});
  EXPECT_EQ(r.exit_code, 3) << r.out << r.err;
  EXPECT_NE(r.out.find("degraded"), std::string::npos);

  std::ifstream report_in(report);
  ASSERT_TRUE(report_in.good());
  std::stringstream report_text;
  report_text << report_in.rdbuf();
  EXPECT_NE(report_text.str().find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(report_text.str().find("\"stages\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliTest, UsageDocumentsExitCodes) {
  const CliRun r = run_cli({});
  EXPECT_NE(r.err.find("exit codes"), std::string::npos);
  EXPECT_NE(r.err.find("--deadline-sec"), std::string::npos);
}

}  // namespace
}  // namespace sparcs::cli

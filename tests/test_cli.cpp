#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/app.hpp"

namespace sparcs::cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, NoArgsPrintsUsage) {
  const CliRun r = run_cli({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownOptionFails) {
  const CliRun r = run_cli({"--workload", "ar", "--bogus"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(CliTest, WorkloadAndFileAreExclusive) {
  const CliRun r = run_cli({"somefile.tg", "--workload", "ar"});
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CliTest, RunsArWorkload) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  EXPECT_NE(r.out.find("partitions used"), std::string::npos);
  EXPECT_NE(r.out.find("Dmax(ns)"), std::string::npos);  // trace table
}

TEST(CliTest, QuietSuppressesTrace) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.find("Dmax(ns)"), std::string::npos);
}

TEST(CliTest, SimulateAddsGantt) {
  const CliRun r = run_cli({"--workload", "ewf", "--ct", "50", "--delta",
                            "50", "--quiet", "--simulate"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("makespan"), std::string::npos);
}

TEST(CliTest, OptimalReference) {
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "10", "--quiet",
                            "--optimal"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("optimal reference:"), std::string::npos);
}

TEST(CliTest, ReadsGraphFileWithDevice) {
  const std::string path = ::testing::TempDir() + "/cli_demo.tg";
  {
    std::ofstream file(path);
    file << R"(graph filedemo
device board 200 64 50
task a 8 0
point a fast 90 120
point a small 50 260
task b 0 4
point b only 60 150
edge a b 8
)";
  }
  const CliRun r = run_cli({path, "--delta", "10", "--quiet"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("filedemo"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MissingFileFails) {
  const CliRun r = run_cli({"/nonexistent/path.tg"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, ExportsDotAndCsv) {
  const std::string dot = ::testing::TempDir() + "/cli_out.dot";
  const std::string csv = ::testing::TempDir() + "/cli_out.csv";
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "64", "--ct", "50", "--delta", "20", "--quiet",
                            "--dot", dot, "--csv", csv});
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream dot_in(dot), csv_in(csv);
  EXPECT_TRUE(dot_in.good());
  EXPECT_TRUE(csv_in.good());
  std::string first_line;
  std::getline(csv_in, first_line);
  EXPECT_NE(first_line.find("N,iteration"), std::string::npos);
  std::remove(dot.c_str());
  std::remove(csv.c_str());
}

TEST(CliTest, InfeasibleDeviceReportsExitCode1) {
  // Memory too small for the AR filter's environment data.
  const CliRun r = run_cli({"--workload", "ar", "--rmax", "200", "--mmax",
                            "1", "--ct", "50", "--delta", "20", "--quiet"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("no feasible"), std::string::npos);
}

}  // namespace
}  // namespace sparcs::cli

#include <gtest/gtest.h>

#include "milp/compiled.hpp"
#include "milp/propagation.hpp"

namespace sparcs::milp {
namespace {

TEST(PropagationTest, UnitPropagationOnEquality) {
  // x + y = 1 with x fixed to 1 forces y = 0.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint(LinExpr(x) + LinExpr(y) == 1.0, "uniq");
  m.tighten_bounds(x, 1, 1);
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  ASSERT_TRUE(prop.propagate(domains, {}, st));
  EXPECT_DOUBLE_EQ(domains.ub(y), 0.0);
  EXPECT_TRUE(domains.is_fixed(y));
}

TEST(PropagationTest, ConflictOnOverCommittedKnapsack) {
  // 5x + 5y <= 4 with both fixed to 1 is a conflict.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint(5.0 * LinExpr(x) + 5.0 * LinExpr(y) <= 4.0, "cap");
  m.tighten_bounds(x, 1, 1);
  m.tighten_bounds(y, 1, 1);
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  EXPECT_FALSE(prop.propagate(domains, {}, st));
  EXPECT_EQ(st.conflicts, 1);
}

TEST(PropagationTest, KnapsackFixesImpossibleItem) {
  // 5x + 3y <= 4: x can never be 1.
  Model m;
  const VarId x = m.add_binary("x");
  m.add_binary("y");
  m.add_constraint(5.0 * LinExpr(x) + 3.0 * LinExpr(VarId{1}) <= 4.0, "cap");
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  ASSERT_TRUE(prop.propagate(domains, {}, st));
  EXPECT_DOUBLE_EQ(domains.ub(x), 0.0);
}

TEST(PropagationTest, ContinuousBoundTightening) {
  // d >= 3x with x = 1 and d <= 10 gives d in [3, 10].
  Model m;
  const VarId x = m.add_binary("x");
  const VarId d = m.add_continuous(0, 10, "d");
  m.add_constraint(3.0 * LinExpr(x) - LinExpr(d) <= 0.0, "def");
  m.tighten_bounds(x, 1, 1);
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  ASSERT_TRUE(prop.propagate(domains, {}, st));
  EXPECT_NEAR(domains.lb(d), 3.0, 1e-9);
}

TEST(PropagationTest, ChainedPropagationAcrossConstraints) {
  // x=1 -> y>=2 (row1), y>=2 -> z<=1 (row2 via z + y <= 3).
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_integer(0, 5, "y");
  const VarId z = m.add_integer(0, 5, "z");
  m.add_constraint(2.0 * LinExpr(x) - LinExpr(y) <= 0.0, "row1");
  m.add_constraint(LinExpr(z) + LinExpr(y) <= 3.0, "row2");
  m.tighten_bounds(x, 1, 1);
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  ASSERT_TRUE(prop.propagate(domains, {}, st));
  EXPECT_DOUBLE_EQ(domains.lb(y), 2.0);
  EXPECT_DOUBLE_EQ(domains.ub(z), 1.0);
}

TEST(PropagationTest, IntegerRounding) {
  // 2y >= 3 forces integer y >= 2.
  Model m;
  const VarId y = m.add_integer(0, 5, "y");
  m.add_constraint(2.0 * LinExpr(y) >= 3.0, "r");
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  ASSERT_TRUE(prop.propagate(domains, {}, st));
  EXPECT_DOUBLE_EQ(domains.lb(y), 2.0);
}

TEST(PropagationTest, InfiniteBoundsHandled) {
  // x free continuous, x >= 5 via row; no crash, bound set.
  Model m;
  const VarId x = m.add_continuous(-kInfinity, kInfinity, "x");
  const VarId y = m.add_continuous(-kInfinity, kInfinity, "y");
  m.add_constraint(LinExpr(x) >= 5.0, "r1");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= 7.0, "r2");
  CompiledModel compiled(m);
  Domains domains(compiled);
  Propagator prop(compiled, 1e-7, 50);
  PropagationStats st;
  ASSERT_TRUE(prop.propagate(domains, {}, st));
  EXPECT_DOUBLE_EQ(domains.lb(x), 5.0);
  EXPECT_DOUBLE_EQ(domains.ub(y), 2.0);
}

TEST(PropagationTest, RollbackRestoresBounds) {
  Model m;
  const VarId x = m.add_binary("x");
  CompiledModel compiled(m);
  Domains domains(compiled);
  const std::size_t mark = domains.checkpoint();
  domains.set_lb(x, 1.0);
  EXPECT_TRUE(domains.is_fixed(x));
  domains.rollback(mark);
  EXPECT_DOUBLE_EQ(domains.lb(x), 0.0);
  EXPECT_FALSE(domains.is_fixed(x));
}

TEST(PropagationTest, SetBoundsIgnoreNonImprovements) {
  Model m;
  const VarId x = m.add_integer(2, 8, "x");
  CompiledModel compiled(m);
  Domains domains(compiled);
  EXPECT_FALSE(domains.set_lb(x, 1.0));
  EXPECT_FALSE(domains.set_ub(x, 9.0));
  EXPECT_TRUE(domains.set_lb(x, 3.0));
  EXPECT_TRUE(domains.set_ub(x, 7.0));
}

}  // namespace
}  // namespace sparcs::milp

// Tests of the milp::Solver session API: construct / solve / re-solve with
// tightened parameters, cooperative cancellation, incumbent callbacks,
// parallel-vs-serial agreement, and the deprecated free-function wrappers
// (the one place in the tree still allowed to call them).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "milp/checker.hpp"
#include "milp/solver.hpp"

namespace sparcs::milp {
namespace {

Model knapsack_model() {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6; optimum 20 at {b, c}.
  Model m("knapsack");
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c) <=
                       6.0, "cap");
  m.set_objective(10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c),
                  /*minimize=*/false);
  return m;
}

/// Infeasible model whose infeasibility needs exhaustive search to prove:
/// an even-coefficient sum can never hit an odd target, but interval
/// propagation cannot see parity, so the DFS enumerates the whole cube.
/// `vars` >= 48 also clears the parallel dispatch threshold.
Model parity_hard_model(int vars) {
  Model m("parity");
  LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    sum += 2.0 * LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == static_cast<double>(vars) + 1.0, "odd");
  return m;
}

TEST(MilpSessionTest, SolveThenResolveWithTightenedParams) {
  const Model m = knapsack_model();
  Solver solver(m, optimality_params());

  const MilpSolution first = solver.solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, 20.0, 1e-6);

  // Re-solve the same session in first-feasible mode: parameter changes made
  // through params() must apply to the next solve().
  solver.params().stop_at_first_feasible = true;
  const MilpSolution second = solver.solve();
  ASSERT_TRUE(second.has_solution());
  EXPECT_TRUE(check_solution(m, second.values).ok);

  // And back to optimality: the session is reusable indefinitely.
  solver.params().stop_at_first_feasible = false;
  const MilpSolution third = solver.solve();
  ASSERT_EQ(third.status, SolveStatus::kOptimal);
  EXPECT_NEAR(third.objective, first.objective, 1e-9);
}

TEST(MilpSessionTest, PreCancelledSolveReturnsLimitReached) {
  const Model m = knapsack_model();
  Solver solver(m, optimality_params());
  solver.cancel();
  EXPECT_TRUE(solver.cancel_requested());
  const MilpSolution s = solver.solve();
  EXPECT_EQ(s.status, SolveStatus::kLimitReached);

  // reset_cancel() re-arms the session.
  solver.reset_cancel();
  EXPECT_FALSE(solver.cancel_requested());
  const MilpSolution again = solver.solve();
  EXPECT_EQ(again.status, SolveStatus::kOptimal);
}

TEST(MilpSessionTest, ExternalCancelTokenStopsSolve) {
  const Model m = parity_hard_model(60);
  SolverParams params;
  params.cancel = CancelToken::create();
  params.cancel.request_cancel();
  Solver solver(m, params);
  const MilpSolution s = solver.solve();
  EXPECT_EQ(s.status, SolveStatus::kLimitReached);
}

TEST(MilpSessionTest, CancelMidSolveReturnsLimitReachedSerial) {
  const Model m = parity_hard_model(60);
  SolverParams params;
  params.num_threads = 1;
  Solver solver(m, params);
  std::thread canceller([&solver] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    solver.cancel();
  });
  const MilpSolution s = solver.solve();
  canceller.join();
  EXPECT_EQ(s.status, SolveStatus::kLimitReached);
  EXPECT_TRUE(s.values.empty());
}

TEST(MilpSessionTest, CancelMidSolveReturnsLimitReachedParallel) {
  const Model m = parity_hard_model(60);
  SolverParams params;
  params.num_threads = 4;
  Solver solver(m, params);
  std::thread canceller([&solver] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    solver.cancel();
  });
  // solve() joins every worker before returning, so control reaching the
  // assertions below with kLimitReached is the no-leaked-workers guarantee.
  const MilpSolution s = solver.solve();
  canceller.join();
  EXPECT_EQ(s.status, SolveStatus::kLimitReached);
  EXPECT_TRUE(s.values.empty());

  // The session is re-armable and fully functional after the aborted solve.
  solver.reset_cancel();
  solver.params().node_limit = 500;
  const MilpSolution bounded = solver.solve();
  EXPECT_EQ(bounded.status, SolveStatus::kLimitReached);
}

TEST(MilpSessionTest, TokenResetClearsSharedFlagInPlace) {
  // Regression: re-arming by *replacing* the token would detach every copy
  // taken earlier (a cancel through an old copy would be silently dropped).
  // CancelToken::reset() clears the shared flag in place, so all copies —
  // including the one the session holds — stay wired together.
  const Model m = knapsack_model();
  SolverParams params = optimality_params();
  params.cancel = CancelToken::create();
  CancelToken token = params.cancel;
  Solver solver(m, params);
  token.request_cancel();
  EXPECT_EQ(solver.solve().status, SolveStatus::kLimitReached);

  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(solver.solve().status, SolveStatus::kOptimal);

  // A cancel through the original copy still lands on the session.
  token.request_cancel();
  EXPECT_EQ(solver.solve().status, SolveStatus::kLimitReached);
}

TEST(MilpSessionTest, ConcurrentCancelDuringResetIsNeverDropped) {
  // Hammer the reset/cancel pair: a cancel that lands concurrently with
  // reset_cancel() must either affect the solve it targeted or the next
  // one — never vanish. With the old swap-the-flag implementation this
  // test hangs or hits the time limit safety net.
  const Model m = parity_hard_model(52);
  SolverParams params;
  params.time_limit_sec = 30.0;  // safety net if a cancel were lost
  params.num_threads = 2;
  Solver solver(m, params);
  for (int round = 0; round < 8; ++round) {
    std::thread canceller([&solver] { solver.cancel(); });
    solver.reset_cancel();
    canceller.join();
    // Whatever interleaving happened, the session must still terminate
    // promptly: either this solve sees the cancel (kLimitReached fast) or
    // the cancel landed before the reset and the solve runs bounded.
    solver.cancel();
    const MilpSolution s = solver.solve();
    EXPECT_EQ(s.status, SolveStatus::kLimitReached) << "round " << round;
    solver.reset_cancel();
    EXPECT_FALSE(solver.cancel_requested()) << "round " << round;
  }
}

TEST(MilpSessionTest, IncumbentCallbackObservesImprovingSolutions) {
  const Model m = knapsack_model();
  Solver solver(m, optimality_params());
  std::vector<double> objectives;
  solver.set_incumbent_callback([&objectives](const IncumbentEvent& event) {
    ASSERT_NE(event.values, nullptr);
    EXPECT_GT(event.nodes_explored, 0);
    objectives.push_back(event.objective);
  });
  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_FALSE(objectives.empty());
  // Maximization: every accepted incumbent improves, the last is the optimum.
  for (std::size_t i = 1; i < objectives.size(); ++i) {
    EXPECT_GT(objectives[i], objectives[i - 1]);
  }
  EXPECT_NEAR(objectives.back(), s.objective, 1e-9);
}

TEST(MilpSessionTest, IncumbentSnapshotExportsTheCarriedUpperBound) {
  const Model m = knapsack_model();
  Solver solver(m, optimality_params());
  // Before any solve there is nothing to export.
  EXPECT_FALSE(solver.incumbent_snapshot().has_value());

  const MilpSolution s = solver.solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  const auto snap = solver.incumbent_snapshot();
  ASSERT_TRUE(snap.has_value());
  // The snapshot is the last accepted incumbent: the optimum, with its full
  // assignment (decodable/replayable by a checkpointer) and node stamp.
  EXPECT_NEAR(snap->objective, s.objective, 1e-9);
  EXPECT_EQ(snap->values.size(), s.values.size());
  EXPECT_GT(snap->nodes_explored, 0);

  // A new solve starts a new incumbent lineage; the stale snapshot must not
  // survive into it. Cancel before solving: no incumbent, no snapshot.
  solver.cancel();
  const MilpSolution cancelled = solver.solve();
  EXPECT_EQ(cancelled.status, SolveStatus::kLimitReached);
  EXPECT_FALSE(solver.incumbent_snapshot().has_value());
  solver.reset_cancel();
}

TEST(MilpSessionTest, IncumbentCallbackCanCancelViaToken) {
  // A knapsack big enough that proving optimality takes far longer than
  // finding the first incumbent, so cancelling from the callback observably
  // cuts the search short (the time limit is only a safety net).
  Model m("knap25");
  LinExpr weight, value;
  double total_weight = 0.0;
  for (int i = 0; i < 25; ++i) {
    const double w = static_cast<double>((2 * i + 5) % 9 + 1);
    const double v = static_cast<double>((3 * i + 7) % 11 + 1);
    const VarId x = m.add_binary("x" + std::to_string(i));
    weight += w * LinExpr(x);
    value += v * LinExpr(x);
    total_weight += w;
  }
  m.add_constraint(std::move(weight) <= total_weight / 3.0, "cap");
  m.set_objective(std::move(value), /*minimize=*/false);

  SolverParams params;
  params.time_limit_sec = 30.0;  // safety net if cancellation were broken
  params.cancel = CancelToken::create();
  CancelToken token = params.cancel;
  Solver solver(m, params);
  std::atomic<int> events{0};
  solver.set_incumbent_callback([&events, token](const IncumbentEvent&) {
    events.fetch_add(1);
    token.request_cancel();
  });
  const MilpSolution s = solver.solve();
  // An incumbent was in hand when the cancel fired.
  EXPECT_EQ(s.status, SolveStatus::kFeasible);
  EXPECT_EQ(events.load(), 1);
}

TEST(MilpSessionTest, ParallelSolveMatchesSerialOnHardInfeasible) {
  const Model m = parity_hard_model(8);
  // Too small for the parallel threshold, but num_threads must still be
  // accepted and produce the serial answer.
  for (const int threads : {1, 2, 8}) {
    SolverParams params;
    params.num_threads = threads;
    const MilpSolution s = Solver(m, params).solve();
    EXPECT_EQ(s.status, SolveStatus::kInfeasible) << threads << " threads";
  }
}

TEST(MilpSessionTest, ParallelFirstFeasibleMatchesSerial) {
  // 60 binaries, pick exactly 7: far above the parallel threshold, many
  // feasible leaves. The accepted candidate must be the serial one (the
  // DFS-first leaf) at every thread count.
  Model m("pick7");
  LinExpr sum;
  for (int i = 0; i < 60; ++i) {
    sum += LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == 7.0, "pick7");

  SolverParams serial = first_feasible_params();
  serial.num_threads = 1;
  const MilpSolution reference = Solver(m, serial).solve();
  ASSERT_EQ(reference.status, SolveStatus::kFeasible);

  for (const int threads : {2, 8}) {
    SolverParams params = first_feasible_params();
    params.num_threads = threads;
    const MilpSolution s = Solver(m, params).solve();
    ASSERT_EQ(s.status, SolveStatus::kFeasible) << threads << " threads";
    EXPECT_EQ(s.values, reference.values) << threads << " threads";
  }
}

TEST(MilpSessionTest, ParallelOptimalityMatchesSerial) {
  const Model m = knapsack_model();
  for (const int threads : {2, 8}) {
    SolverParams params = optimality_params();
    params.num_threads = threads;
    const MilpSolution s = Solver(m, params).solve();
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << threads << " threads";
    EXPECT_NEAR(s.objective, 20.0, 1e-6) << threads << " threads";
  }
}

// The deprecated free functions must keep working until the next major
// version; this is the single remaining call site in the tree.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(MilpSessionTest, DeprecatedWrappersStillWork) {
  const Model m = knapsack_model();
  const MilpSolution plain = solve(m);
  EXPECT_TRUE(plain.has_solution());
  const MilpSolution feasible = solve_first_feasible(m);
  EXPECT_TRUE(feasible.has_solution());
  const MilpSolution optimal = solve_to_optimality(m);
  ASSERT_EQ(optimal.status, SolveStatus::kOptimal);
  EXPECT_NEAR(optimal.objective, 20.0, 1e-6);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace sparcs::milp

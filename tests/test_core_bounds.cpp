#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/bounds.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"

namespace sparcs::core {
namespace {

TEST(BoundsTest, DctPartitionBounds576) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  // Total min area 16*64 + 16*84 = 2368 -> ceil(2368/576) = 5.
  EXPECT_EQ(min_area_partitions(g, dev), 5);
  // Total max area 16*96 + 16*112 = 3328 -> ceil(3328/576) = 6.
  EXPECT_EQ(max_area_partitions(g, dev), 6);
}

TEST(BoundsTest, DctPartitionBounds1024) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 1024, 4096, 100);
  EXPECT_EQ(min_area_partitions(g, dev), 3);   // 2368/1024 = 2.31
  EXPECT_EQ(max_area_partitions(g, dev), 4);   // 3328/1024 = 3.25
}

TEST(BoundsTest, ExactDivisionDoesNotRoundUp) {
  graph::TaskGraph g("t");
  g.add_task("a", {{"m", 100, 10}});
  g.add_task("b", {{"m", 100, 10}});
  const arch::Device dev = arch::custom("d", 100, 10, 0);
  EXPECT_EQ(min_area_partitions(g, dev), 2);
  const arch::Device dev2 = arch::custom("d", 200, 10, 0);
  EXPECT_EQ(min_area_partitions(g, dev2), 1);
}

TEST(BoundsTest, LatencyBoundsIncludeReconfig) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 1000);
  EXPECT_DOUBLE_EQ(max_latency(g, dev, 5), 25440.0 + 5 * 1000.0);
  EXPECT_DOUBLE_EQ(min_latency(g, dev, 5), 795.0 + 5 * 1000.0);
  // Monotone in N.
  EXPECT_GT(min_latency(g, dev, 6), min_latency(g, dev, 5));
}

TEST(BoundsTest, MinAtMostMax) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_LE(min_latency(g, dev, n), max_latency(g, dev, n));
  }
  EXPECT_LE(min_area_partitions(g, dev), max_area_partitions(g, dev));
}

TEST(BoundsTest, InvalidPartitionCountRejected) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  EXPECT_THROW(max_latency(g, dev, 0), InvalidArgumentError);
  EXPECT_THROW(min_latency(g, dev, -1), InvalidArgumentError);
}

}  // namespace
}  // namespace sparcs::core

// Tests for the ASAP/ALAP/mobility analyses and clock-period exploration.
#include <gtest/gtest.h>

#include "hls/design_point_gen.hpp"
#include "hls/scheduler.hpp"
#include "support/error.hpp"
#include "workloads/dct.hpp"
#include "workloads/ewf.hpp"

namespace sparcs::hls {
namespace {

TEST(AsapAlapTest, ChainSchedules) {
  Dfg dfg("chain");
  const OpId a = dfg.add_op(OpKind::kAdd, 8);   // 2 cycles at 10 ns
  const OpId b = dfg.add_op(OpKind::kAdd, 8);
  const OpId c = dfg.add_op(OpKind::kAdd, 8);
  dfg.add_dep(a, b);
  dfg.add_dep(b, c);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  const SchedulerOptions options{10.0};
  const auto asap = asap_schedule(dfg, lib, options);
  EXPECT_EQ(asap, (std::vector<int>{0, 2, 4}));
  const auto alap = alap_schedule(dfg, lib, options);
  EXPECT_EQ(alap, asap);  // chain: zero mobility everywhere
  const auto mob = mobility(dfg, lib, options);
  EXPECT_EQ(mob, (std::vector<int>{0, 0, 0}));
}

TEST(AsapAlapTest, SideBranchHasMobility) {
  Dfg dfg("t");
  const OpId m = dfg.add_op(OpKind::kMul, 8);   // 4 cycles
  const OpId a = dfg.add_op(OpKind::kAdd, 8);   // 2 cycles, parallel branch
  const OpId join = dfg.add_op(OpKind::kAdd, 8);
  dfg.add_dep(m, join);
  dfg.add_dep(a, join);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  const auto mob = mobility(dfg, lib, {10.0});
  EXPECT_EQ(mob[m], 0);    // critical
  EXPECT_EQ(mob[a], 2);    // can slide by 2 cycles
  EXPECT_EQ(mob[join], 0);
}

TEST(AsapAlapTest, DeadlineExtendsMobility) {
  Dfg dfg("t");
  dfg.add_op(OpKind::kAdd, 8);  // 2 cycles alone
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  const auto mob = mobility(dfg, lib, {10.0}, /*deadline=*/6);
  EXPECT_EQ(mob[0], 4);
  EXPECT_THROW(alap_schedule(dfg, lib, {10.0}, 1), InvalidArgumentError);
}

TEST(AsapAlapTest, AlapNeverBeforeAsap) {
  const Dfg dfg = workloads::ewf_section_dfg(12);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  const auto mob = mobility(dfg, lib, {10.0});
  for (const int m : mob) EXPECT_GE(m, 0);
}

TEST(ClockExplorationTest, MultipleClocksWidenTheFront) {
  const Dfg dfg = workloads::dct_vector_product_dfg(12);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  GeneratorOptions single;
  single.max_points = 16;
  single.scheduler.clock_ns = 20.0;
  const auto single_front = generate_design_points(dfg, lib, single);

  GeneratorOptions multi = single;
  multi.clock_candidates_ns = {10.0, 20.0, 44.0};
  const auto multi_front = generate_design_points(dfg, lib, multi);

  // The multi-clock front must dominate-or-match the single-clock one: for
  // every single-clock point there is a multi-clock point at most as large
  // and at most as slow.
  for (const graph::DesignPoint& s : single_front) {
    bool dominated = false;
    for (const graph::DesignPoint& m : multi_front) {
      if (m.area <= s.area + 1e-9 && m.latency_ns <= s.latency_ns + 1e-9) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << s.module_set;
  }
}

TEST(ClockExplorationTest, ClockAnnotatedInModuleSet) {
  const Dfg dfg = workloads::dct_vector_product_dfg(12);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  GeneratorOptions options;
  options.clock_candidates_ns = {10.0, 25.0};
  options.max_points = 16;
  const auto front = generate_design_points(dfg, lib, options);
  bool any_annotated = false;
  for (const graph::DesignPoint& p : front) {
    if (p.module_set.find("@") != std::string::npos) any_annotated = true;
  }
  EXPECT_TRUE(any_annotated);
}

TEST(ClockExplorationTest, FasterClockCanReduceLatency) {
  // A 4-bit adder takes 10 ns; at a 44 ns clock it wastes most of the cycle,
  // at an 11 ns clock it doesn't.
  Dfg dfg("t");
  dfg.add_op(OpKind::kAdd, 4);
  dfg.add_op(OpKind::kAdd, 4);
  dfg.add_dep(0, 1);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  Allocation alloc;
  alloc.set(OpKind::kAdd, 1);
  const ScheduleResult slow = list_schedule(dfg, alloc, lib, {44.0});
  const ScheduleResult fast = list_schedule(dfg, alloc, lib, {11.0});
  EXPECT_LT(fast.latency_ns, slow.latency_ns);
}

TEST(EwfWorkloadTest, StructureAndPoints) {
  const graph::TaskGraph g = workloads::ewf_task_graph();
  EXPECT_EQ(g.num_tasks(), 5);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_NO_THROW(g.validate());
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_GE(g.task(t).design_points.size(), 2u) << g.task(t).name;
  }
  const graph::TaskGraph pinned =
      workloads::ewf_task_graph(workloads::DesignPointSource::kPinned);
  EXPECT_NO_THROW(pinned.validate());
}

}  // namespace
}  // namespace sparcs::hls

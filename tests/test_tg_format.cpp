#include <gtest/gtest.h>

#include "io/tg_format.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/ewf.hpp"

namespace sparcs::io {
namespace {

constexpr const char* kSample = R"(# demo graph
graph demo
device board 200 64 50

task a 8 0
point a fast 90 120
point a small 50 260
task b 0 4
point b only 60 150

edge a b 8
)";

TEST(TgFormatTest, ParsesSample) {
  const TaskGraphFile file = read_task_graph_string(kSample);
  EXPECT_EQ(file.graph.name(), "demo");
  EXPECT_EQ(file.graph.num_tasks(), 2);
  EXPECT_EQ(file.graph.num_edges(), 1);
  ASSERT_TRUE(file.device.has_value());
  EXPECT_DOUBLE_EQ(file.device->resource_capacity, 200);
  EXPECT_DOUBLE_EQ(file.device->reconfig_time_ns, 50);
  const graph::Task& a = file.graph.task(file.graph.find_task("a"));
  ASSERT_EQ(a.design_points.size(), 2u);
  EXPECT_DOUBLE_EQ(a.design_points[1].latency_ns, 260);
  EXPECT_DOUBLE_EQ(a.env_in, 8);
}

TEST(TgFormatTest, RoundTripsArFilter) {
  const graph::TaskGraph original = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  const std::string text = to_task_graph_string(original, &dev);
  const TaskGraphFile parsed = read_task_graph_string(text);
  EXPECT_EQ(parsed.graph.num_tasks(), original.num_tasks());
  EXPECT_EQ(parsed.graph.num_edges(), original.num_edges());
  ASSERT_TRUE(parsed.device.has_value());
  for (graph::TaskId t = 0; t < original.num_tasks(); ++t) {
    const graph::Task& lhs = original.task(t);
    const graph::Task& rhs = parsed.graph.task(parsed.graph.find_task(lhs.name));
    EXPECT_EQ(lhs.design_points, rhs.design_points) << lhs.name;
    EXPECT_DOUBLE_EQ(lhs.env_in, rhs.env_in);
    EXPECT_DOUBLE_EQ(lhs.env_out, rhs.env_out);
  }
}

TEST(TgFormatTest, ErrorsNameTheLine) {
  try {
    read_task_graph_string("graph g\nbogus directive\n");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TgFormatTest, RejectsUnknownTaskReferences) {
  EXPECT_THROW(read_task_graph_string("graph g\ntask a\npoint a m 1 1\n"
                                      "edge a zz 1\n"),
               InvalidArgumentError);
  EXPECT_THROW(read_task_graph_string("graph g\npoint nosuch m 1 1\n"),
               InvalidArgumentError);
}

TEST(TgFormatTest, RejectsDuplicatesAndBadNumbers) {
  EXPECT_THROW(read_task_graph_string("task a\ntask a\n"),
               InvalidArgumentError);
  EXPECT_THROW(read_task_graph_string("task a xyz\n"), InvalidArgumentError);
  EXPECT_THROW(
      read_task_graph_string("device d 1 1 1\ndevice d 1 1 1\ntask a\n"),
      InvalidArgumentError);
}

TEST(TgFormatTest, RejectsCorruptNumericFields) {
  // Truncated or bit-flipped files must produce a classified error naming
  // the offending line, never a silent misparse into nonsense quantities.
  struct Case {
    const char* label;
    const char* text;
    const char* line_tag;
  };
  const Case cases[] = {
      {"nan latency", "task a\npoint a m 10 nan\n", "line 2"},
      {"inf area", "task a\npoint a m inf 10\n", "line 2"},
      {"overflow to inf", "task a\npoint a m 1e999 10\n", "line 2"},
      {"negative area", "task a\npoint a m -5 10\n", "line 2"},
      {"negative latency", "task a\npoint a m 10 -1\n", "line 2"},
      {"negative env", "task a -3\n", "line 1"},
      {"negative device param", "device d 200 -64 50\ntask a\n", "line 1"},
      {"negative edge units",
       "task a\npoint a m 1 1\ntask b\npoint b m 1 1\nedge a b -2\n",
       "line 5"},
      {"truncated device line", "device d 200 64\n", "line 1"},
      {"truncated point line", "task a\npoint a m 10\n", "line 2"},
      {"number with trailing junk", "task a 1.5x\n", "line 1"},
  };
  for (const Case& c : cases) {
    try {
      read_task_graph_string(c.text);
      FAIL() << c.label << ": expected InvalidArgumentError";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find(c.line_tag), std::string::npos)
          << c.label << ": " << e.what();
    }
  }
}

TEST(TgFormatTest, GraphValidationStillApplies) {
  // A cyclic file parses structurally but fails validation.
  EXPECT_THROW(read_task_graph_string(R"(graph g
task a
point a m 10 10
task b
point b m 10 10
edge a b 1
edge b a 1
)"),
               InvalidArgumentError);
}

TEST(TgFormatTest, EwfRoundTrip) {
  const graph::TaskGraph original = workloads::ewf_task_graph();
  const TaskGraphFile parsed =
      read_task_graph_string(to_task_graph_string(original));
  EXPECT_EQ(parsed.graph.num_tasks(), 5);
  EXPECT_EQ(parsed.graph.num_edges(), original.num_edges());
  EXPECT_FALSE(parsed.device.has_value());
}

}  // namespace
}  // namespace sparcs::io

// Stress test for concurrent milp::Solver sessions — the invariant the solve
// service's worker pool leans on: independent sessions in one process must
// not share mutable state, even while mixing optimality runs, tiny time
// limits, mid-solve cancellation from other threads, certified solves and
// shared cancel tokens. Runs under the TSAN CI job (matched by its ctest
// regex), so a data race here is a build failure, not a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "milp/checker.hpp"
#include "milp/solver.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"

namespace sparcs::milp {
namespace {

Model knapsack_model() {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6; optimum 20 at {b, c}.
  Model m("knapsack");
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c) <=
                       6.0, "cap");
  m.set_objective(10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c),
                  /*minimize=*/false);
  return m;
}

/// Infeasible model whose infeasibility needs exhaustive search to prove:
/// an even-coefficient sum can never hit an odd target, so the DFS
/// enumerates long enough for another thread to cancel it mid-solve.
Model parity_hard_model(int vars) {
  Model m("parity");
  LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    sum += 2.0 * LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == static_cast<double>(vars) + 1.0, "odd");
  return m;
}

TEST(MilpConcurrentSessions, MixedSessionsStayIndependent) {
  // >= 4 simultaneous sessions with deliberately different behaviors; every
  // session keeps its own model, params and verdict.
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    const Model knapsack = knapsack_model();
    const Model parity = parity_hard_model(30);

    std::atomic<bool> optimal_ok{true};
    std::atomic<bool> certified_ok{true};
    std::atomic<bool> limited_ok{true};
    std::atomic<bool> cancelled_done{false};

    // Session A: plain optimality.
    std::thread optimal([&] {
      Solver solver(knapsack, optimality_params());
      const MilpSolution s = solver.solve();
      if (s.status != SolveStatus::kOptimal ||
          std::abs(s.objective - 20.0) > 1e-6 ||
          !check_solution(knapsack, s.values).ok) {
        optimal_ok.store(false);
      }
    });

    // Session B: optimality with exact certificates on.
    std::thread certified([&] {
      SolverParams params = optimality_params();
      params.certify = CertifyMode::kFull;
      Solver solver(knapsack, params);
      const MilpSolution s = solver.solve();
      if (s.status != SolveStatus::kOptimal ||
          s.certified == CertifyStatus::kUncertified) {
        certified_ok.store(false);
      }
    });

    // Session C: a hard solve under a tiny time limit; must come back as a
    // limit, not hang or crash.
    std::thread limited([&] {
      SolverParams params;
      params.time_limit_sec = 0.02;
      Solver solver(parity, params);
      const MilpSolution s = solver.solve();
      if (s.status != SolveStatus::kLimitReached &&
          s.status != SolveStatus::kInfeasible) {
        limited_ok.store(false);
      }
    });

    // Session D: cancelled from this thread mid-solve.
    Solver victim(parity, SolverParams{});
    std::thread cancelled([&] {
      const MilpSolution s = victim.solve();
      // Either the cancel landed (limit) or the proof finished first.
      if (s.status != SolveStatus::kLimitReached &&
          s.status != SolveStatus::kInfeasible) {
        limited_ok.store(false);
      }
      cancelled_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    victim.cancel();

    optimal.join();
    certified.join();
    limited.join();
    cancelled.join();
    EXPECT_TRUE(optimal_ok.load());
    EXPECT_TRUE(certified_ok.load());
    EXPECT_TRUE(limited_ok.load());
    EXPECT_TRUE(cancelled_done.load());
  }
}

TEST(MilpConcurrentSessions, SharedCancelTokenStopsEverySession) {
  // One token distributed over many sessions — the service's shutdown path:
  // a single request_cancel() must stop all of them promptly.
  constexpr int kSessions = 6;
  CancelToken shared = CancelToken::create();
  std::vector<std::unique_ptr<Solver>> solvers;
  const Model parity = parity_hard_model(34);
  for (int i = 0; i < kSessions; ++i) {
    SolverParams params;
    params.cancel = shared;
    solvers.push_back(std::make_unique<Solver>(parity, params));
  }
  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (auto& solver : solvers) {
    threads.emplace_back([&] {
      (void)solver->solve();
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  shared.request_cancel();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(finished.load(), kSessions);
}

TEST(MilpConcurrentSessions, ConcurrentPartitionerRunsProduceIdenticalReports) {
  // Two whole TemporalPartitioner sweeps in parallel — the worker-pool case
  // one level up from raw solver sessions. Same inputs must give the same
  // answer as a serial reference run.
  const graph::TaskGraph graph = workloads::ar_filter_task_graph();
  const arch::Device device = arch::custom("stress", 200.0, 64.0, 50.0);
  core::PartitionerOptions options;
  options.budget.delta = 20.0;

  const core::PartitionerReport reference =
      core::TemporalPartitioner(graph, device, options).run();
  ASSERT_TRUE(reference.feasible);

  constexpr int kRuns = 4;
  std::vector<core::PartitionerReport> reports(kRuns);
  std::vector<std::thread> threads;
  threads.reserve(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    threads.emplace_back([&, i] {
      reports[i] = core::TemporalPartitioner(graph, device, options).run();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const core::PartitionerReport& report : reports) {
    EXPECT_TRUE(report.feasible);
    EXPECT_DOUBLE_EQ(report.achieved_latency, reference.achieved_latency);
    EXPECT_EQ(report.best_num_partitions, reference.best_num_partitions);
  }
}

}  // namespace
}  // namespace sparcs::milp

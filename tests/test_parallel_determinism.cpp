// Determinism of the parallel search paths: the partitioner must produce an
// identical iteration trace (all algorithmic columns; wall time and node
// counts are allowed to differ) and identical achieved latency regardless of
// SolverParams::num_threads — the contract that makes --threads safe to flip
// on existing experiment scripts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"

namespace sparcs::core {
namespace {

/// The algorithmic projection of a trace: every column the paper's tables
/// print, excluding measurements (seconds, nodes, solver stats) that
/// legitimately vary run to run.
std::string trace_key(const Trace& trace) {
  std::ostringstream os;
  for (const IterationRecord& row : trace) {
    os << row.num_partitions << '/' << row.iteration << '/'
       << row.d_max_bound << '/' << row.d_min_bound << '/'
       << static_cast<int>(row.outcome) << '/' << row.achieved_latency
       << '\n';
  }
  return os.str();
}

PartitionerReport run_with_threads(const graph::TaskGraph& graph,
                                   const arch::Device& device, double delta,
                                   int threads) {
  PartitionerOptions options;
  options.budget.delta = delta;
  options.budget.solver.num_threads = threads;
  options.budget.solver.time_limit_sec = 30.0;
  return TemporalPartitioner(graph, device, options).run();
}

void expect_thread_invariant(const graph::TaskGraph& graph,
                             const arch::Device& device, double delta) {
  const PartitionerReport reference =
      run_with_threads(graph, device, delta, 1);
  ASSERT_TRUE(reference.feasible);
  const std::string reference_key = trace_key(reference.trace);

  for (const int threads : {2, 8}) {
    const PartitionerReport report =
        run_with_threads(graph, device, delta, threads);
    ASSERT_TRUE(report.feasible) << threads << " threads";
    EXPECT_EQ(report.achieved_latency, reference.achieved_latency)
        << threads << " threads";
    EXPECT_EQ(report.best_num_partitions, reference.best_num_partitions)
        << threads << " threads";
    EXPECT_EQ(trace_key(report.trace), reference_key)
        << threads << " threads";
    EXPECT_EQ(report.ilp_solves, reference.ilp_solves)
        << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, ArFilterTraceIsThreadCountInvariant) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("ar_dev", 200, 64, 50);
  expect_thread_invariant(g, dev, 20.0);
}

TEST(ParallelDeterminismTest, ArFilterLargeCtTraceIsThreadCountInvariant) {
  // A large reconfiguration overhead changes which branch of
  // Refine_Partitions_Bound terminates the sweep; both regimes must be
  // deterministic.
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("ar_dev_largect", 200, 64, 1000);
  expect_thread_invariant(g, dev, 20.0);
}

TEST(ParallelDeterminismTest, DctTraceIsThreadCountInvariant) {
  // The 1024-CLB device from the paper's Tables 5-8 with the table-6 delta;
  // several partition bounds stay in play, so the sweep exercises the
  // speculative N+1 overlap.
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("dct_dev_1024", 1024, 4096, 100);
  expect_thread_invariant(g, dev, 800.0);
}

TEST(ParallelDeterminismTest, DctLargeCtTraceIsThreadCountInvariant) {
  // A reconfiguration overhead large enough that MinLatency(N) >= Da fires
  // right after the first feasible bound (the paper's large-Ct regime).
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("dct_dev_largect", 1024, 4096, 1000);
  expect_thread_invariant(g, dev, 800.0);
}

}  // namespace
}  // namespace sparcs::core

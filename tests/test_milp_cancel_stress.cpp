// Cancellation stress suite, written to run under ThreadSanitizer (the file
// name matches the CI tsan job's test filter): seeded randomized cancels
// landing at arbitrary points of serial and parallel solves must always
// unwind cleanly — classified status, no leaked workers, exact stats — and
// the session must stay reusable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>

#include "milp/checker.hpp"
#include "milp/solver.hpp"

namespace sparcs::milp {
namespace {

/// Infeasible parity model: an even sum can never hit an odd target, but
/// propagation cannot see parity, so the search runs until cancelled.
Model parity_hard_model(int vars) {
  Model m("parity");
  LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    sum += 2.0 * LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == static_cast<double>(vars) + 1.0, "odd");
  return m;
}

/// Feasible pick-7-of-60 model; above the parallel dispatch threshold and
/// quick to satisfy in first-feasible mode.
Model pick_model() {
  Model m("pick7");
  LinExpr sum;
  for (int i = 0; i < 60; ++i) {
    sum += LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == 7.0, "pick7");
  return m;
}

TEST(MilpCancelStressTest, SeededRandomCancelsUnwindCleanly) {
  const Model m = parity_hard_model(56);
  std::mt19937 rng(0x5eed);  // fixed seed: failures are reproducible
  std::uniform_int_distribution<int> delay_us(0, 15000);
  for (const int threads : {1, 2, 8}) {
    for (int round = 0; round < 5; ++round) {
      SolverParams params;
      params.num_threads = threads;
      params.time_limit_sec = 60.0;  // safety net if cancellation broke
      Solver solver(m, params);
      const int delay = delay_us(rng);
      std::thread canceller([&solver, delay] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
        solver.cancel();
      });
      // solve() joins every worker before returning; reaching the
      // assertions is the clean-unwinding guarantee.
      const MilpSolution s = solver.solve();
      canceller.join();
      EXPECT_EQ(s.status, SolveStatus::kLimitReached)
          << threads << " threads, round " << round;
      EXPECT_TRUE(s.values.empty());
      // The merged stats must be internally consistent however many
      // workers were interrupted mid-batch.
      EXPECT_EQ(s.nodes_explored, s.stats.nodes_explored);
      EXPECT_EQ(s.propagations, s.stats.propagated_constraints);
      EXPECT_GE(s.stats.max_depth, 0);
      EXPECT_LE(s.stats.vars_fixed,
                s.stats.bounds_tightened + s.stats.vars_fixed);
    }
  }
}

TEST(MilpCancelStressTest, CancelResetHammerKeepsSessionUsable) {
  const Model m = pick_model();
  SolverParams params = first_feasible_params();
  params.num_threads = 2;
  params.time_limit_sec = 60.0;
  Solver solver(m, params);

  // Reference answer from an undisturbed solve.
  const MilpSolution reference = solver.solve();
  ASSERT_EQ(reference.status, SolveStatus::kFeasible);

  std::atomic<bool> stop{false};
  std::thread hammer([&solver, &stop] {
    while (!stop.load()) {
      solver.cancel();
      solver.reset_cancel();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; ++round) {
    solver.reset_cancel();
    const MilpSolution s = solver.solve();
    // A hammered solve either finished (and then must reproduce the
    // deterministic first-feasible answer) or was cancelled cleanly.
    if (s.has_solution()) {
      EXPECT_EQ(s.status, SolveStatus::kFeasible) << "round " << round;
      EXPECT_EQ(s.values, reference.values) << "round " << round;
      EXPECT_TRUE(check_solution(m, s.values).ok) << "round " << round;
    } else {
      EXPECT_EQ(s.status, SolveStatus::kLimitReached) << "round " << round;
    }
  }
  stop.store(true);
  hammer.join();

  // After the hammer stops the session must work normally again.
  solver.reset_cancel();
  const MilpSolution final_solve = solver.solve();
  ASSERT_EQ(final_solve.status, SolveStatus::kFeasible);
  EXPECT_EQ(final_solve.values, reference.values);
}

TEST(MilpCancelStressTest, StatsStayDeterministicAcrossCancelledRuns) {
  // Serial solves are bit-deterministic; interleaving cancelled runs in the
  // same session must not perturb the stats of the clean runs.
  const Model m = pick_model();
  SolverParams params = first_feasible_params();
  params.num_threads = 1;
  Solver solver(m, params);
  const MilpSolution first = solver.solve();
  ASSERT_EQ(first.status, SolveStatus::kFeasible);

  solver.cancel();
  const MilpSolution cancelled = solver.solve();
  EXPECT_EQ(cancelled.status, SolveStatus::kLimitReached);
  solver.reset_cancel();

  const MilpSolution second = solver.solve();
  ASSERT_EQ(second.status, SolveStatus::kFeasible);
  EXPECT_EQ(second.values, first.values);
  EXPECT_EQ(second.stats.nodes_explored, first.stats.nodes_explored);
  EXPECT_EQ(second.stats.simplex_iterations, first.stats.simplex_iterations);
  EXPECT_EQ(second.stats.propagated_constraints,
            first.stats.propagated_constraints);
  EXPECT_EQ(second.stats.incumbent_updates, first.stats.incumbent_updates);
}

}  // namespace
}  // namespace sparcs::milp

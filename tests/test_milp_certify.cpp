// Certificate-rejection suite: the exact checker must refuse certificates
// that are wrong by any margin — a Farkas ray with the wrong sign structure,
// an incumbent violating a constraint by one ulp, branch boxes that fail to
// cover a domain — and the solver/partitioner must answer a refused
// certificate by demoting the verdict, never by changing it.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/device.hpp"
#include "core/bounds.hpp"
#include "core/refine_partitions.hpp"
#include "milp/certify.hpp"
#include "milp/solver.hpp"
#include "support/failpoint.hpp"
#include "workloads/ar_filter.hpp"

namespace sparcs::milp {
namespace {

// --- certify_feasible -------------------------------------------------------

/// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6; optimum 20 at {b, c}.
Model knapsack_model() {
  Model m("knapsack");
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c) <=
                       6.0,
                   "cap");
  m.set_objective(10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c),
                  /*minimize=*/false);
  return m;
}

TEST(CertifyFeasibleTest, AcceptsExactSolution) {
  const CertifyCheck check =
      certify_feasible(knapsack_model(), {0.0, 1.0, 1.0});
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(CertifyFeasibleTest, RejectsOneUlpConstraintViolation) {
  // 0.1 * 3 evaluates to 0.30000000000000004 in doubles: exactly one ulp
  // above 0.3. Every tolerance-based checker accepts this point; the exact
  // checker must reject it, and the integral variable leaves no room for
  // the continuous-repair pass to mask the violation.
  Model m("ulp");
  m.add_integer(0, 10, "x");
  m.add_constraint(0.1 * LinExpr(0) <= 0.3, "tight");
  EXPECT_FALSE(certify_feasible(m, {3.0}).ok);
  // One step down the violation disappears (0.1 * 2 < 0.3 exactly).
  EXPECT_TRUE(certify_feasible(m, {2.0}).ok);
}

TEST(CertifyFeasibleTest, RejectsNonIntegralValue) {
  Model m("frac");
  m.add_integer(0, 10, "x");
  m.add_constraint(LinExpr(0) <= 5.0, "cap");
  EXPECT_FALSE(certify_feasible(m, {std::nextafter(3.0, 4.0)}).ok);
  EXPECT_TRUE(certify_feasible(m, {3.0}).ok);
}

TEST(CertifyFeasibleTest, RejectsOutOfBoundsValue) {
  Model m("oob");
  m.add_integer(0, 4, "x");
  EXPECT_FALSE(certify_feasible(m, {5.0}).ok);
}

// --- certify_infeasible -----------------------------------------------------

/// x + y >= 3 with x, y binary: infeasible (max lhs is 2).
Model infeasible_model() {
  Model m("infeasible");
  m.add_binary("x");
  m.add_binary("y");
  m.add_constraint(LinExpr(0) + LinExpr(1) >= 3.0, "need3");
  return m;
}

/// Infeasible in a way interval propagation cannot see: no single row
/// tightens any bound (each residual interval is slack), but summing the
/// three pairwise rows gives x + y + z <= 3, contradicting the >= 4 row —
/// a refutation only the LP finds, so the proof carries a Farkas leaf.
Model lp_refuted_model() {
  Model m("lp_refuted");
  const VarId x = m.add_integer(0, 2, "x");
  const VarId y = m.add_integer(0, 2, "y");
  const VarId z = m.add_integer(0, 2, "z");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= 2.0, "xy");
  m.add_constraint(LinExpr(y) + LinExpr(z) <= 2.0, "yz");
  m.add_constraint(LinExpr(x) + LinExpr(z) <= 2.0, "xz");
  m.add_constraint(LinExpr(x) + LinExpr(y) + LinExpr(z) >= 4.0, "sum");
  return m;
}

TEST(CertifyInfeasibleTest, SolverProofPassesExactCheck) {
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = CertifyMode::kFull;
  const MilpSolution s = Solver(infeasible_model(), params).solve();
  ASSERT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_EQ(s.certified, CertifyStatus::kCertified) << s.certify_detail;
  ASSERT_NE(s.proof, nullptr);
  EXPECT_TRUE(certify_infeasible(infeasible_model(), *s.proof).ok);
}

TEST(CertifyInfeasibleTest, LpRefutedProofCarriesFarkasLeafAndPasses) {
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = CertifyMode::kFull;
  const MilpSolution s = Solver(lp_refuted_model(), params).solve();
  ASSERT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_EQ(s.certified, CertifyStatus::kCertified) << s.certify_detail;
  ASSERT_NE(s.proof, nullptr);
  bool saw_farkas = false;
  for (const ProofNode& node : s.proof->nodes) {
    saw_farkas |= node.kind == ProofNode::Kind::kFarkas;
  }
  EXPECT_TRUE(saw_farkas);
  EXPECT_TRUE(certify_infeasible(lp_refuted_model(), *s.proof).ok);
}

TEST(CertifyInfeasibleTest, RejectsFarkasRayOnFeasibleModel) {
  // A single-leaf "proof" whose ray claims the knapsack capacity row alone
  // refutes the box. No sign combination can: the model is feasible.
  InfeasibilityProof proof;
  ProofNode leaf;
  leaf.kind = ProofNode::Kind::kFarkas;
  leaf.rows = {0};
  leaf.y = {1.0};
  proof.nodes.push_back(leaf);
  EXPECT_FALSE(certify_infeasible(knapsack_model(), proof).ok);
}

TEST(CertifyInfeasibleTest, RejectsZeroAndWrongSignRays) {
  const Model m = infeasible_model();
  {
    InfeasibilityProof proof;
    ProofNode leaf;
    leaf.kind = ProofNode::Kind::kFarkas;
    leaf.rows = {0};
    leaf.y = {0.0};  // the zero ray proves nothing
    proof.nodes.push_back(leaf);
    EXPECT_FALSE(certify_infeasible(m, proof).ok);
  }
  {
    InfeasibilityProof proof;
    ProofNode leaf;
    leaf.kind = ProofNode::Kind::kFarkas;
    leaf.rows = {0};
    // need3 is a >= row: its multiplier must be <= 0 (y = -1 is the genuine
    // certificate). The sign condition rejects the flipped ray outright.
    leaf.y = {1.0};
    proof.nodes.push_back(leaf);
    EXPECT_FALSE(certify_infeasible(m, proof).ok);
  }
  {
    // And the correctly-signed ray on the same row is accepted.
    InfeasibilityProof proof;
    ProofNode leaf;
    leaf.kind = ProofNode::Kind::kFarkas;
    leaf.rows = {0};
    leaf.y = {-1.0};
    proof.nodes.push_back(leaf);
    EXPECT_TRUE(certify_infeasible(m, proof).ok);
  }
}

TEST(CertifyInfeasibleTest, RejectsBranchesThatDoNotCoverTheDomain) {
  // Interior node splits x in [0,10] into [0,4] and [6,10], silently
  // dropping x = 5 — exactly the hole a buggy (or corrupted) search would
  // leave. Both children carry genuine conflicts for their own boxes.
  Model m("hole");
  m.add_integer(0, 10, "x");
  m.add_constraint(LinExpr(0) >= 20.0, "big");  // conflicts everywhere
  InfeasibilityProof proof;
  ProofNode root;
  root.kind = ProofNode::Kind::kBranched;
  root.var = 0;
  root.branches = {{0.0, 4.0}, {6.0, 10.0}};
  proof.nodes.push_back(root);
  for (int child = 0; child < 2; ++child) {
    ProofNode leaf;
    leaf.rank = {child};
    leaf.kind = ProofNode::Kind::kConflict;
    leaf.conflict_row = 0;
    proof.nodes.push_back(leaf);
  }
  EXPECT_FALSE(certify_infeasible(m, proof).ok);
  // Closing the hole makes the same proof pass.
  proof.nodes[0].branches = {{0.0, 4.0}, {5.0, 10.0}};
  EXPECT_TRUE(certify_infeasible(m, proof).ok);
}

TEST(CertifyInfeasibleTest, RejectsOverflowedProof) {
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = CertifyMode::kFull;
  const MilpSolution s = Solver(infeasible_model(), params).solve();
  ASSERT_NE(s.proof, nullptr);
  InfeasibilityProof truncated = *s.proof;
  truncated.overflowed = true;
  EXPECT_FALSE(certify_infeasible(infeasible_model(), truncated).ok);
}

TEST(CertifyInfeasibleTest, RejectsEmptyProof) {
  EXPECT_FALSE(certify_infeasible(infeasible_model(), {}).ok);
}

// --- corrupt certificates through the solver and the partitioner ------------

class CertifyFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "built without SPARCS_ENABLE_FAILPOINTS";
    }
    failpoint::disarm_all();
  }
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(CertifyFailpointTest, CorruptRayDemotesVerdictAfterDistrustRetry) {
  // Every Farkas ray is zeroed at extraction, so the first solve and the
  // distrust re-solve both produce uncheckable proofs. The verdict itself
  // must not move — infeasible stays infeasible — it just loses its
  // certificate.
  failpoint::arm("milp.certify.corrupt_ray");
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = CertifyMode::kFull;
  const MilpSolution s = Solver(lp_refuted_model(), params).solve();
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_EQ(s.certified, CertifyStatus::kUncertified);
  EXPECT_EQ(s.stats.certify_retries, 1);
  EXPECT_GE(s.stats.certificates_failed, 1);
  EXPECT_EQ(s.stats.uncertified_verdicts, 1);
}

TEST_F(CertifyFailpointTest, CorruptProofDegradesSweepWithoutChangingLatency) {
  // End-to-end: with corrupt certificates the sweep's infeasible probes go
  // uncertified and the affected stages stop on a conservative window. The
  // reported latency must come only from certified feasible incumbents —
  // identical to the clean run's — with the damage surfaced as
  // degraded/kDegraded, not as a different answer. Both corruption sites
  // are armed; the partitioning probes are propagation-refuted, so
  // corrupt_proof is the one that fires here.
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("ar_dev", 200, 64, 50);
  core::RefinePartitionsParams params;
  params.budget.delta = 20.0;
  params.budget.solver.node_limit = 200000;
  params.budget.solver.num_threads = 1;
  params.budget.solver.certify = CertifyMode::kFull;

  const core::RefinePartitionsResult clean =
      core::refine_partitions_bound(g, dev, params);
  ASSERT_TRUE(clean.best.has_value());
  EXPECT_FALSE(clean.degraded);

  failpoint::arm("milp.certify.corrupt_ray");
  failpoint::arm("milp.certify.corrupt_proof");
  const core::RefinePartitionsResult corrupted =
      core::refine_partitions_bound(g, dev, params);
  failpoint::disarm_all();

  ASSERT_TRUE(corrupted.best.has_value());
  EXPECT_EQ(corrupted.achieved_latency, clean.achieved_latency);
  EXPECT_TRUE(corrupted.degraded);
  bool saw_degraded_stage = false;
  for (const core::StageAccount& stage : corrupted.stages) {
    saw_degraded_stage |= stage.status == core::StageStatus::kDegraded;
  }
  EXPECT_TRUE(saw_degraded_stage);
  bool saw_uncertified_probe = false;
  for (const core::IterationRecord& row : corrupted.trace) {
    saw_uncertified_probe |=
        row.outcome == core::IterationOutcome::kUncertified;
  }
  EXPECT_TRUE(saw_uncertified_probe);
  EXPECT_GT(corrupted.solver_stats.uncertified_verdicts, 0);
}

}  // namespace
}  // namespace sparcs::milp

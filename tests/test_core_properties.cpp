// Cross-cutting property sweeps over random instances:
//  - the four formulation variants (order form x latency form) agree on the
//    optimal latency;
//  - the transitive-reduction option never changes the answer;
//  - every solver-produced design passes the independent validator AND the
//    ILP's own memory accounting matches the validator's;
//  - the iterative partitioner never loses to the greedy baselines.
#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/baselines.hpp"
#include "core/bounds.hpp"
#include "core/formulation.hpp"
#include "core/partitioner.hpp"
#include "milp/solver.hpp"
#include "workloads/synthetic.hpp"

namespace sparcs::core {
namespace {

graph::TaskGraph seeded_graph(std::uint64_t seed) {
  workloads::RandomGraphOptions options;
  options.num_tasks = 7;
  options.num_layers = 3;
  options.num_design_points = 2;
  options.seed = seed;
  return workloads::random_task_graph(options);
}

class FormulationVariantsTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormulationVariantsTest, AllVariantsAgreeOnOptimum) {
  const graph::TaskGraph g = seeded_graph(GetParam());
  const arch::Device dev = arch::custom("d", 300, 2048, 60);
  const int n = min_area_partitions(g, dev) + 1;

  double reference = -1.0;
  for (const auto order : {FormulationOptions::OrderForm::kPairwise,
                           FormulationOptions::OrderForm::kAggregated}) {
    for (const auto latency : {FormulationOptions::LatencyForm::kPathBased,
                               FormulationOptions::LatencyForm::kFlowBased}) {
      FormulationOptions options;
      options.order_form = order;
      options.latency_form = latency;
      IlpFormulation form(g, dev, n, max_latency(g, dev, n),
                          min_latency(g, dev, n), options);
      form.set_latency_objective();
      milp::SolverParams params;
      params.use_lp_bounding = true;
      params.objective_improvement = 1.0;
      const milp::MilpSolution s = milp::Solver(form.model(), params).solve();
      ASSERT_EQ(s.status, milp::SolveStatus::kOptimal)
          << "seed " << GetParam();
      const double latency_ns = form.decode(s.values).total_latency_ns;
      if (reference < 0) {
        reference = latency_ns;
      } else {
        EXPECT_NEAR(latency_ns, reference, 1e-6)
            << "seed " << GetParam() << " order "
            << static_cast<int>(order) << " latency "
            << static_cast<int>(latency);
      }
    }
  }
}

TEST_P(FormulationVariantsTest, TransitiveReductionPreservesOptimum) {
  const graph::TaskGraph g = seeded_graph(GetParam() ^ 0x5a5a);
  const arch::Device dev = arch::custom("d", 300, 2048, 60);
  const int n = min_area_partitions(g, dev) + 1;
  double results[2];
  for (const bool reduce : {false, true}) {
    FormulationOptions options;
    options.reduce_order_edges = reduce;
    IlpFormulation form(g, dev, n, max_latency(g, dev, n),
                        min_latency(g, dev, n), options);
    form.set_latency_objective();
    milp::SolverParams params;
    params.use_lp_bounding = true;
    params.objective_improvement = 1.0;
    const milp::MilpSolution s = milp::Solver(form.model(), params).solve();
    ASSERT_EQ(s.status, milp::SolveStatus::kOptimal);
    results[reduce ? 1 : 0] = form.decode(s.values).total_latency_ns;
  }
  EXPECT_NEAR(results[0], results[1], 1e-6);
}

TEST_P(FormulationVariantsTest, DecodedDesignsPassTheValidator) {
  const graph::TaskGraph g = seeded_graph(GetParam() * 17 + 3);
  // Tight-ish memory so the w-variable accounting is actually exercised.
  const arch::Device dev = arch::custom("d", 300, 48, 60);
  const int n = min_area_partitions(g, dev) + 1;
  IlpFormulation form(g, dev, n, max_latency(g, dev, n),
                      min_latency(g, dev, n));
  const milp::MilpSolution s = milp::Solver(form.model(), milp::first_feasible_params()).solve();
  if (!s.has_solution()) {
    // The validator-side exhaustive check must agree there is nothing.
    if (g.num_tasks() <= 8) {
      EXPECT_FALSE(exhaustive_optimal(g, dev, n).has_value())
          << "seed " << GetParam();
    }
    return;
  }
  const PartitionedDesign design = form.decode(s.values);
  const DesignCheck check = validate_design(g, dev, design);
  EXPECT_TRUE(check.ok) << check.violation;
  // The model's memory rows imply the validator's accounting partition by
  // partition.
  for (int p = 1; p <= n; ++p) {
    EXPECT_LE(partition_memory(g, design, p), dev.memory_capacity + 1e-6)
        << "partition " << p;
  }
}

TEST_P(FormulationVariantsTest, IterativeNeverLosesToGreedy) {
  const graph::TaskGraph g = seeded_graph(GetParam() * 31 + 11);
  const arch::Device dev = arch::custom("d", 300, 2048, 60);
  PartitionerOptions options;
  options.budget.delta = 30.0;
  options.budget.solver.time_limit_sec = 5.0;
  const PartitionerReport report =
      TemporalPartitioner(g, dev, options).run();
  if (!report.feasible) return;
  for (const PointPolicy policy :
       {PointPolicy::kMinArea, PointPolicy::kMinLatency}) {
    const auto greedy = greedy_first_fit(g, dev, policy);
    if (greedy.has_value()) {
      EXPECT_LE(report.achieved_latency, greedy->total_latency_ns + 1e-6)
          << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulationVariantsTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace sparcs::core

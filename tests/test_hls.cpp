#include <gtest/gtest.h>

#include "hls/design_point_gen.hpp"
#include "hls/dfg.hpp"
#include "hls/module_library.hpp"
#include "hls/scheduler.hpp"
#include "support/error.hpp"
#include "workloads/dct.hpp"

namespace sparcs::hls {
namespace {

Dfg two_mul_one_add() {
  Dfg dfg("t");
  const OpId m1 = dfg.add_op(OpKind::kMul, 8, "m1");
  const OpId m2 = dfg.add_op(OpKind::kMul, 8, "m2");
  const OpId a = dfg.add_op(OpKind::kAdd, 8, "a");
  dfg.add_dep(m1, a);
  dfg.add_dep(m2, a);
  return dfg;
}

TEST(DfgTest, BasicConstruction) {
  const Dfg dfg = two_mul_one_add();
  EXPECT_EQ(dfg.num_ops(), 3);
  EXPECT_EQ(dfg.count_of(OpKind::kMul), 2);
  EXPECT_EQ(dfg.count_of(OpKind::kAdd), 1);
  EXPECT_EQ(dfg.count_of(OpKind::kSub), 0);
  EXPECT_EQ(dfg.max_bitwidth_of(OpKind::kMul), 8);
  EXPECT_EQ(dfg.kinds_used().size(), 2u);
}

TEST(DfgTest, TopologicalOrderAndCycleDetection) {
  Dfg dfg("t");
  const OpId a = dfg.add_op(OpKind::kAdd, 8);
  const OpId b = dfg.add_op(OpKind::kAdd, 8);
  dfg.add_dep(a, b);
  EXPECT_EQ(dfg.topological_order(), (std::vector<OpId>{a, b}));
  dfg.add_dep(b, a);
  EXPECT_THROW(dfg.topological_order(), InvalidArgumentError);
}

TEST(DfgTest, InvalidBitwidthRejected) {
  Dfg dfg("t");
  EXPECT_THROW(dfg.add_op(OpKind::kAdd, 0), InvalidArgumentError);
  EXPECT_THROW(dfg.add_op(OpKind::kAdd, 65), InvalidArgumentError);
}

TEST(ModuleLibraryTest, AreaGrowsWithWidth) {
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  EXPECT_LT(lib.area(OpKind::kAdd, 8), lib.area(OpKind::kAdd, 16));
  EXPECT_LT(lib.area(OpKind::kMul, 8), lib.area(OpKind::kMul, 16));
  // Multipliers grow superlinearly relative to adders.
  EXPECT_GT(lib.area(OpKind::kMul, 16) / lib.area(OpKind::kMul, 8),
            lib.area(OpKind::kAdd, 16) / lib.area(OpKind::kAdd, 8));
}

TEST(ModuleLibraryTest, DelayGrowsWithWidth) {
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  EXPECT_LT(lib.delay(OpKind::kAdd, 8), lib.delay(OpKind::kAdd, 32));
}

TEST(ModuleLibraryTest, CustomModel) {
  ModuleLibrary lib = ModuleLibrary::xc4000();
  lib.set_model(OpKind::kAdd, {2.0, 0.0, 0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(lib.area(OpKind::kAdd, 8), 16.0);
  EXPECT_DOUBLE_EQ(lib.delay(OpKind::kAdd, 8), 8.0);
}

TEST(SchedulerTest, SerialWithOneFu) {
  const Dfg dfg = two_mul_one_add();
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  Allocation alloc;
  alloc.set(OpKind::kMul, 1);
  alloc.set(OpKind::kAdd, 1);
  const ScheduleResult r = list_schedule(dfg, alloc, lib, {10.0});
  // mul(8): 8 + 3*8 = 32ns -> 4 cycles each; add(8): 4+1.5*8=16 -> 2 cycles.
  // Serial muls: 8 cycles, then add: 10 cycles total.
  EXPECT_EQ(r.total_cycles, 10);
  EXPECT_DOUBLE_EQ(r.latency_ns, 100.0);
}

TEST(SchedulerTest, ParallelWithTwoFus) {
  const Dfg dfg = two_mul_one_add();
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  Allocation alloc;
  alloc.set(OpKind::kMul, 2);
  alloc.set(OpKind::kAdd, 1);
  const ScheduleResult r = list_schedule(dfg, alloc, lib, {10.0});
  EXPECT_EQ(r.total_cycles, 6);  // muls in parallel (4) + add (2)
}

TEST(SchedulerTest, MoreFusNeverSlower) {
  const Dfg dfg = workloads::dct_vector_product_dfg(12);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  int previous = std::numeric_limits<int>::max();
  for (int units = 1; units <= 4; ++units) {
    Allocation alloc;
    alloc.set(OpKind::kMul, units);
    alloc.set(OpKind::kAdd, units);
    const ScheduleResult r = list_schedule(dfg, alloc, lib, {10.0});
    EXPECT_LE(r.total_cycles, previous);
    previous = r.total_cycles;
  }
}

TEST(SchedulerTest, RespectsPrecedence) {
  const Dfg dfg = two_mul_one_add();
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  Allocation alloc;
  alloc.set(OpKind::kMul, 2);
  alloc.set(OpKind::kAdd, 2);
  const ScheduleResult r = list_schedule(dfg, alloc, lib);
  // The add must start after both muls finish.
  const int add_start = r.start_cycle[2];
  EXPECT_GE(add_start, r.start_cycle[0] + r.duration_cycles[0]);
  EXPECT_GE(add_start, r.start_cycle[1] + r.duration_cycles[1]);
}

TEST(SchedulerTest, MissingFuRejected) {
  const Dfg dfg = two_mul_one_add();
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  Allocation alloc;
  alloc.set(OpKind::kMul, 1);  // no adder
  EXPECT_THROW(list_schedule(dfg, alloc, lib), InvalidArgumentError);
}

TEST(SchedulerTest, AsapIsLowerBound) {
  const Dfg dfg = workloads::dct_vector_product_dfg(12);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  const int asap = asap_length_cycles(dfg, lib);
  Allocation alloc;
  alloc.set(OpKind::kMul, 4);
  alloc.set(OpKind::kAdd, 3);
  const ScheduleResult r = list_schedule(dfg, alloc, lib);
  EXPECT_GE(r.total_cycles, asap);
}

TEST(ParetoTest, FilterRemovesDominated) {
  std::vector<graph::DesignPoint> points = {
      {"a", 100, 50}, {"b", 100, 60}, {"c", 50, 100}, {"d", 120, 50},
      {"e", 60, 90}};
  const auto front = pareto_filter(points);
  // Survivors: c (50,100), e (60,90), a (100,50). b dominated by a, d by a.
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].module_set, "c");
  EXPECT_EQ(front[1].module_set, "e");
  EXPECT_EQ(front[2].module_set, "a");
}

TEST(DesignPointGenTest, ProducesParetoFront) {
  const Dfg dfg = workloads::dct_vector_product_dfg(12);
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  GeneratorOptions options;
  options.max_points = 5;
  const auto points = generate_design_points(dfg, lib, options);
  ASSERT_GE(points.size(), 2u);
  ASSERT_LE(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].area, points[i - 1].area);
    EXPECT_LT(points[i].latency_ns, points[i - 1].latency_ns);
  }
}

TEST(DesignPointGenTest, AllocationAreaMatchesComponents) {
  const Dfg dfg = two_mul_one_add();
  const ModuleLibrary lib = ModuleLibrary::xc4000();
  Allocation alloc;
  alloc.set(OpKind::kMul, 2);
  alloc.set(OpKind::kAdd, 1);
  const double expected = 2 * (lib.area(OpKind::kMul, 8) +
                               lib.steering_overhead_clb(8)) +
                          1 * (lib.area(OpKind::kAdd, 8) +
                               lib.steering_overhead_clb(8));
  EXPECT_DOUBLE_EQ(allocation_area(dfg, alloc, lib), expected);
}

TEST(DesignPointGenTest, AllocationToString) {
  const Dfg dfg = two_mul_one_add();
  Allocation alloc;
  alloc.set(OpKind::kMul, 2);
  alloc.set(OpKind::kAdd, 1);
  EXPECT_EQ(alloc.to_string(dfg), "1xadd8+2xmul8");
}

}  // namespace
}  // namespace sparcs::hls

#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/baselines.hpp"
#include "core/bounds.hpp"
#include "core/partitioner.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"
#include "workloads/synthetic.hpp"

namespace sparcs::core {
namespace {

TEST(GreedyBaselineTest, ProducesValidDesign) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  for (const PointPolicy policy :
       {PointPolicy::kMinArea, PointPolicy::kMinLatency,
        PointPolicy::kMaxArea}) {
    const auto design = greedy_first_fit(g, dev, policy);
    ASSERT_TRUE(design.has_value());
    EXPECT_TRUE(validate_design(g, dev, *design).ok);
  }
}

TEST(GreedyBaselineTest, MinAreaUsesFewestPartitions) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  const auto small = greedy_first_fit(g, dev, PointPolicy::kMinArea);
  const auto fast = greedy_first_fit(g, dev, PointPolicy::kMinLatency);
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(fast.has_value());
  EXPECT_LE(small->num_partitions_used, fast->num_partitions_used);
  // The min-area greedy respects the analytical lower bound.
  EXPECT_GE(small->num_partitions_used, min_area_partitions(g, dev));
}

TEST(GreedyBaselineTest, FailsWhenATaskCannotFit) {
  graph::TaskGraph g("big");
  g.add_task("huge", {{"m", 500, 10}});
  const arch::Device dev = arch::custom("d", 100, 64, 1);
  EXPECT_FALSE(greedy_first_fit(g, dev, PointPolicy::kMinArea).has_value());
}

TEST(GreedyBaselineTest, IterativePartitionerBeatsOrMatchesGreedy) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  PartitionerOptions options;
  options.budget.delta = 10.0;
  const PartitionerReport report = TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);
  for (const PointPolicy policy :
       {PointPolicy::kMinArea, PointPolicy::kMinLatency}) {
    const auto greedy = greedy_first_fit(g, dev, policy);
    if (greedy.has_value()) {
      EXPECT_LE(report.achieved_latency,
                greedy->total_latency_ns + 1e-6);
    }
  }
}

TEST(ExhaustiveTest, FindsKnownOptimum) {
  // Two tasks, one partition each is forced by area; optimum picks the fast
  // points because reconfiguration is cheap.
  graph::TaskGraph g("t");
  const graph::TaskId a =
      g.add_task("a", {{"fast", 90, 50}, {"small", 50, 200}});
  const graph::TaskId b =
      g.add_task("b", {{"fast", 90, 60}, {"small", 50, 210}});
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 100, 64, 5);
  const auto best = exhaustive_optimal(g, dev, 2);
  ASSERT_TRUE(best.has_value());
  // Options: both small in one partition: 200+210+5 = 415 (chained).
  // Fast in two partitions: 50+60+10 = 120. Mixed are worse.
  EXPECT_DOUBLE_EQ(best->total_latency_ns, 120.0);
  EXPECT_EQ(best->num_partitions_used, 2);
}

TEST(ExhaustiveTest, DetectsInfeasibility) {
  graph::TaskGraph g("t");
  g.add_task("a", {{"m", 500, 10}});
  const arch::Device dev = arch::custom("d", 100, 64, 1);
  EXPECT_FALSE(exhaustive_optimal(g, dev, 3).has_value());
}

TEST(ExhaustiveTest, RefusesLargeGraphs) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  EXPECT_THROW(exhaustive_optimal(g, dev, 4), InvalidArgumentError);
}

TEST(GreedyBaselineTest, HeuristicBoundsForAlphaGamma) {
  // Section 3.2.2: the greedy with min-area points gives N'; with max-area
  // points gives N''. These bracket the analytic bounds from below/above.
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 1024, 4096, 100);
  const auto n_prime = greedy_first_fit(g, dev, PointPolicy::kMinArea);
  const auto n_double_prime =
      greedy_first_fit(g, dev, PointPolicy::kMaxArea);
  ASSERT_TRUE(n_prime.has_value());
  ASSERT_TRUE(n_double_prime.has_value());
  EXPECT_GE(n_prime->num_partitions_used, min_area_partitions(g, dev));
  EXPECT_GE(n_double_prime->num_partitions_used,
            max_area_partitions(g, dev));
}

}  // namespace
}  // namespace sparcs::core

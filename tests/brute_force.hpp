// Brute-force reference solvers used by the property tests to cross-validate
// the MILP solver and the temporal partitioning formulation on small inputs.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "milp/checker.hpp"
#include "milp/model.hpp"

namespace sparcs::testing {

/// Exhaustively enumerates all assignments of the model's integer variables
/// (continuous variables must be absent) and returns the best objective, or
/// nullopt when infeasible. Only usable for tiny models.
inline std::optional<double> brute_force_best_objective(
    const milp::Model& model) {
  const int n = model.num_vars();
  std::vector<double> values(static_cast<std::size_t>(n), 0.0);
  std::optional<double> best;
  const bool minimize = model.minimize();

  // Collect per-variable candidate values.
  std::vector<std::vector<double>> domains;
  for (milp::VarId v = 0; v < n; ++v) {
    const milp::VarInfo& info = model.var(v);
    std::vector<double> d;
    for (double x = std::ceil(info.lb - 1e-9); x <= info.ub + 1e-9; x += 1.0) {
      d.push_back(std::round(x));
    }
    domains.push_back(std::move(d));
  }

  std::vector<std::size_t> idx(static_cast<std::size_t>(n), 0);
  while (true) {
    for (int v = 0; v < n; ++v) {
      values[static_cast<std::size_t>(v)] =
          domains[static_cast<std::size_t>(v)][idx[static_cast<std::size_t>(v)]];
    }
    if (milp::check_solution(model, values).ok) {
      const double obj = model.objective().evaluate(values);
      if (!best || (minimize ? obj < *best : obj > *best)) best = obj;
    }
    // Odometer increment.
    int v = 0;
    while (v < n) {
      if (++idx[static_cast<std::size_t>(v)] <
          domains[static_cast<std::size_t>(v)].size()) {
        break;
      }
      idx[static_cast<std::size_t>(v)] = 0;
      ++v;
    }
    if (v == n) break;
  }
  return best;
}

}  // namespace sparcs::testing

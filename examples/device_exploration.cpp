// Device/parameter exploration on a synthetic workload.
//
//   $ ./examples/device_exploration
//
// Sweeps the reconfiguration time and the latency tolerance delta on an
// FFT-style butterfly graph, showing how the best partition count moves
// with the overhead (Section 2's area-latency tradeoff) and how delta
// trades run time against solution quality (the Tables 5 vs 7 effect).
#include <cstdio>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "io/table.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace sparcs;

  const graph::TaskGraph g = workloads::butterfly_task_graph(2, 8);
  std::printf("workload: %s with %d tasks, %d edges\n", g.name().c_str(),
              g.num_tasks(), g.num_edges());

  // Sweep 1: reconfiguration overhead vs best partition count.
  {
    io::AsciiTable table(
        {"Ct (ns)", "best N", "total latency (ns)", "ILP solves"});
    for (const double ct : {10.0, 100.0, 1000.0, 100000.0, 1.0e7}) {
      const arch::Device dev = arch::custom("sweep", 500, 4096, ct);
      core::PartitionerOptions options;
      options.budget.delta = 50.0;
      options.budget.solver.time_limit_sec = 1.0;
      const core::PartitionerReport report =
          core::TemporalPartitioner(g, dev, options).run();
      table.add_row({std::to_string((long long)ct),
                     std::to_string(report.best_num_partitions),
                     report.feasible
                         ? std::to_string((long long)report.achieved_latency)
                         : "Inf.",
                     std::to_string(report.ilp_solves)});
    }
    std::printf("\nreconfiguration overhead sweep (delta=50):\n%s",
                table.to_string().c_str());
  }

  // Sweep 2: latency tolerance delta vs quality and effort.
  {
    const arch::Device dev = arch::custom("sweep", 500, 4096, 100.0);
    io::AsciiTable table(
        {"delta (ns)", "total latency (ns)", "ILP solves", "time (s)"});
    for (const double delta : {800.0, 200.0, 50.0}) {
      core::PartitionerOptions options;
      options.budget.delta = delta;
      options.budget.solver.time_limit_sec = 1.0;
      const core::PartitionerReport report =
          core::TemporalPartitioner(g, dev, options).run();
      char seconds[32];
      std::snprintf(seconds, sizeof seconds, "%.2f", report.seconds);
      table.add_row({std::to_string((long long)delta),
                     report.feasible
                         ? std::to_string((long long)report.achieved_latency)
                         : "Inf.",
                     std::to_string(report.ilp_solves), seconds});
    }
    std::printf("\nlatency tolerance sweep (Ct=100 ns):\n%s"
                "smaller delta spends more iterations for typically "
                "equal-or-better latency (per-solve budgets can perturb "
                "individual runs)\n",
                table.to_string().c_str());
  }
  return 0;
}

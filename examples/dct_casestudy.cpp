// DCT 4x4 case study (the paper's Section 4 / Figure 6 workload).
//
//   $ ./examples/dct_casestudy [out_dir]
//
// Partitions the 32-task DCT for a 1024-CLB device in both reconfiguration
// regimes, prints the paper-style iteration trace, writes the Figure-6 task
// graph and the partitioned design as DOT, and dumps the trace as CSV for
// plotting.
#include <cstdio>
#include <fstream>
#include <string>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "io/csv.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "workloads/dct.hpp"

int main(int argc, char** argv) {
  using namespace sparcs;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const graph::TaskGraph g = workloads::dct_task_graph();
  {
    std::ofstream dot(out_dir + "/dct.dot");
    io::write_dot(dot, g);
    std::printf("wrote %s/dct.dot (Figure 6 task graph, 32 tasks)\n",
                out_dir.c_str());
  }

  for (const double ct : {100.0, 1.0e7}) {
    const arch::Device dev = arch::custom("dct_dev", 1024, 4096, ct);
    core::PartitionerOptions options;
    options.budget.delta = 100.0;
    options.alpha = ct < 1e6 ? 1 : 0;  // paper: alpha = 0 for large overheads
    options.budget.solver.time_limit_sec = 5.0;
    const core::PartitionerReport report =
        core::TemporalPartitioner(g, dev, options).run();

    std::printf("\n--- Ct = %g ns (%s regime) ---\n", ct,
                ct < 1e6 ? "time-multiplexed" : "Wildforce-like");
    std::printf("%s", io::render_trace(report.trace, ct, true).c_str());
    if (!report.feasible) continue;
    std::printf("best: %g ns total at N=%d (execution %g ns, "
                "%d reconfigurations)%s\n",
                report.achieved_latency, report.best_num_partitions,
                report.best->execution_latency_ns,
                report.best->num_partitions_used,
                report.stopped_by_lower_bound
                    ? " — sweep stopped by the MinLatency(N) >= Da rule"
                    : "");

    const std::string suffix = ct < 1e6 ? "smallct" : "largect";
    {
      std::ofstream dot(out_dir + "/dct_partitioned_" + suffix + ".dot");
      io::write_dot(dot, g, *report.best);
    }
    {
      std::ofstream csv(out_dir + "/dct_trace_" + suffix + ".csv");
      io::write_trace_csv(csv, report.trace);
    }
    std::printf("wrote dct_partitioned_%s.dot and dct_trace_%s.csv\n",
                suffix.c_str(), suffix.c_str());
  }
  return 0;
}

// AR filter case study (the paper's Table 1 / Figure 5 workload).
//
//   $ ./examples/ar_filter_study [out_dir]
//
// Runs the iterative partitioner and the optimal-ILP reference on the
// six-task auto-regressive filter under both reconfiguration regimes,
// prints the iteration traces, and writes Figure-5-style DOT files
// (ar_filter.dot, ar_filter_partitioned.dot) to out_dir (default ".").
#include <cstdio>
#include <fstream>
#include <string>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "workloads/ar_filter.hpp"

int main(int argc, char** argv) {
  using namespace sparcs;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  {
    std::ofstream dot(out_dir + "/ar_filter.dot");
    io::write_dot(dot, g);
    std::printf("wrote %s/ar_filter.dot (Figure 5 task graph)\n",
                out_dir.c_str());
  }

  for (const double ct : {50.0, 1.0e7}) {
    const arch::Device dev = arch::custom("ar_dev", 200, 64, ct);
    core::PartitionerOptions options;
    options.budget.delta = 10.0;
    const core::PartitionerReport report =
        core::TemporalPartitioner(g, dev, options).run();
    std::printf("\n--- Ct = %g ns ---\n%s", ct,
                io::render_trace(report.trace, ct, false).c_str());
    if (!report.feasible) continue;
    std::printf("iterative: %g ns at N=%d\n", report.achieved_latency,
                report.best_num_partitions);

    const core::OptimalResult optimal =
        core::solve_optimal_over_range(g, dev, 0, 1);
    std::printf("optimal reference: %g ns -> %s\n", optimal.latency_ns,
                std::abs(optimal.latency_ns - report.achieved_latency) <=
                        options.budget.delta + 1e-9
                    ? "iterative result is optimal (within delta)"
                    : "iterative result is suboptimal");

    if (ct == 50.0) {
      std::ofstream dot(out_dir + "/ar_filter_partitioned.dot");
      io::write_dot(dot, g, *report.best);
      std::printf("wrote %s/ar_filter_partitioned.dot\n", out_dir.c_str());
    }
  }
  return 0;
}

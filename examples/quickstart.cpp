// Quickstart: partition a small behavioral task graph for a run-time
// reconfigurable device in ~40 lines.
//
//   $ ./examples/quickstart
//
// Builds a four-task pipeline with area/latency design alternatives, asks
// the combined temporal-partitioning + design-space-exploration engine for a
// latency-minimized mapping, and prints the resulting configuration plan.
#include <cstdio>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "graph/task_graph.hpp"

int main() {
  using namespace sparcs;

  // 1. Behavioral specification: a diamond of tasks. Each task carries the
  //    design points a high-level synthesis estimator produced for it
  //    (module set, area in CLBs, latency in ns).
  graph::TaskGraph g("quickstart");
  const auto load = g.add_task(
      "load", {{"wide", 90, 120}, {"narrow", 50, 260}}, /*env_in=*/16);
  const auto fir = g.add_task("fir", {{"4mac", 120, 180}, {"1mac", 60, 420}});
  const auto fft = g.add_task("fft", {{"radix4", 110, 200}, {"radix2", 70, 380}});
  const auto store = g.add_task(
      "store", {{"only", 60, 150}}, /*env_in=*/0, /*env_out=*/16);
  g.add_edge(load, fir, 8);
  g.add_edge(load, fft, 8);
  g.add_edge(fir, store, 8);
  g.add_edge(fft, store, 8);

  // 2. Target: a reconfigurable processor with 200 CLBs, 64 memory units and
  //    a 50 ns reconfiguration time.
  const arch::Device device = arch::custom("demo-rc", 200, 64, 50);

  // 3. Partition. delta is the latency tolerance of the iterative search.
  core::PartitionerOptions options;
  options.budget.delta = 10.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, device, options).run();

  if (!report.feasible) {
    std::puts("no feasible temporal partitioning exists for this device");
    return 1;
  }
  std::printf("achieved latency: %g ns over %d configuration(s), "
              "%d ILP solves in %.3f s\n\n%s",
              report.achieved_latency, report.best->num_partitions_used,
              report.ilp_solves, report.seconds,
              report.best->to_string(g).c_str());
  return 0;
}

// Full SPARCS-style flow on the EWF workload:
//
//   1. estimate design points per task (HLS estimator),
//   2. temporal partitioning + design space exploration (this paper),
//   3. spatial partitioning of every configuration onto a multi-FPGA board,
//   4. event-driven simulation of the resulting schedule.
//
//   $ ./examples/sparcs_flow
#include <cstdio>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "sim/executor.hpp"
#include "spatial/flow.hpp"
#include "workloads/ewf.hpp"

int main() {
  using namespace sparcs;

  // 1. Behavioral spec with estimator-generated design points.
  const graph::TaskGraph g = workloads::ewf_task_graph();
  std::printf("EWF workload: %d tasks, %d edges\n", g.num_tasks(),
              g.num_edges());
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    std::printf("  %s:", g.task(t).name.c_str());
    for (const graph::DesignPoint& p : g.task(t).design_points) {
      std::printf(" [%s %g CLB %g ns]", p.module_set.c_str(), p.area,
                  p.latency_ns);
    }
    std::printf("\n");
  }

  // 2. Temporal partitioning for a 300-CLB device, 50 ns reconfiguration.
  const arch::Device dev = arch::custom("rc300", 300, 128, 50);
  core::PartitionerOptions options;
  options.budget.delta = 25.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  if (!report.feasible) {
    std::puts("temporal partitioning infeasible");
    return 1;
  }
  std::printf("\ntemporal partitioning: %g ns over %d configuration(s)\n%s",
              report.achieved_latency, report.best->num_partitions_used,
              report.best->to_string(g).c_str());

  // 3. Spatial partitioning: two 176-CLB FPGAs with a 32-unit interconnect
  //    (each chip must fit the largest single design point).
  spatial::Board board;
  board.name = "2xFPGA176";
  board.num_fpgas = 2;
  board.fpga_capacity = 176;
  board.interconnect_capacity = 32;
  const spatial::FlowResult flow =
      spatial::map_design_to_board(g, *report.best, board);
  std::printf("\n%s", flow.to_string(g).c_str());
  if (!flow.ok) return 1;

  // 4. Simulated execution.
  const sim::SimulationResult run = sim::simulate(g, dev, *report.best);
  std::printf("\nsimulated execution:\n%s", run.to_string(g).c_str());
  std::printf("simulated makespan %g ns vs analytic %g ns\n", run.makespan_ns,
              report.best->total_latency_ns);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/sparcs_flow.dir/sparcs_flow.cpp.o"
  "CMakeFiles/sparcs_flow.dir/sparcs_flow.cpp.o.d"
  "sparcs_flow"
  "sparcs_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

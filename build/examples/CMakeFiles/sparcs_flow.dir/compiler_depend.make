# Empty compiler generated dependencies file for sparcs_flow.
# This may be replaced when dependencies are built.

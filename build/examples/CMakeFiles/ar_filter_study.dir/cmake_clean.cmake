file(REMOVE_RECURSE
  "CMakeFiles/ar_filter_study.dir/ar_filter_study.cpp.o"
  "CMakeFiles/ar_filter_study.dir/ar_filter_study.cpp.o.d"
  "ar_filter_study"
  "ar_filter_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_filter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

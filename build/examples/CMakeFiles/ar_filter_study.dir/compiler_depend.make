# Empty compiler generated dependencies file for ar_filter_study.
# This may be replaced when dependencies are built.

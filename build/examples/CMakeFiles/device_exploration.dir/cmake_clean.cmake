file(REMOVE_RECURSE
  "CMakeFiles/device_exploration.dir/device_exploration.cpp.o"
  "CMakeFiles/device_exploration.dir/device_exploration.cpp.o.d"
  "device_exploration"
  "device_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

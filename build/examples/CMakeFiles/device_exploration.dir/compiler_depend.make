# Empty compiler generated dependencies file for device_exploration.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dct_casestudy.
# This may be replaced when dependencies are built.

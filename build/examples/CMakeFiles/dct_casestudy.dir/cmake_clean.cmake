file(REMOVE_RECURSE
  "CMakeFiles/dct_casestudy.dir/dct_casestudy.cpp.o"
  "CMakeFiles/dct_casestudy.dir/dct_casestudy.cpp.o.d"
  "dct_casestudy"
  "dct_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dct_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

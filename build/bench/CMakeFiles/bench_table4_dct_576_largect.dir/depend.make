# Empty dependencies file for bench_table4_dct_576_largect.
# This may be replaced when dependencies are built.

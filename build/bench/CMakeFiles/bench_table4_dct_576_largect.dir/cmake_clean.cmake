file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dct_576_largect.dir/bench_table4_dct_576_largect.cc.o"
  "CMakeFiles/bench_table4_dct_576_largect.dir/bench_table4_dct_576_largect.cc.o.d"
  "bench_table4_dct_576_largect"
  "bench_table4_dct_576_largect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dct_576_largect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

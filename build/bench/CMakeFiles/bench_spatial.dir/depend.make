# Empty dependencies file for bench_spatial.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dct_576_smallct.dir/bench_table3_dct_576_smallct.cc.o"
  "CMakeFiles/bench_table3_dct_576_smallct.dir/bench_table3_dct_576_smallct.cc.o.d"
  "bench_table3_dct_576_smallct"
  "bench_table3_dct_576_smallct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dct_576_smallct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

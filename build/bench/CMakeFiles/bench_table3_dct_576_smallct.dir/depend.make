# Empty dependencies file for bench_table3_dct_576_smallct.
# This may be replaced when dependencies are built.

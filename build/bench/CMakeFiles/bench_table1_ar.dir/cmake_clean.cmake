file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ar.dir/bench_table1_ar.cc.o"
  "CMakeFiles/bench_table1_ar.dir/bench_table1_ar.cc.o.d"
  "bench_table1_ar"
  "bench_table1_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_ar.
# This may be replaced when dependencies are built.

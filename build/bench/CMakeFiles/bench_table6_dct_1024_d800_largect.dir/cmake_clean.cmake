file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_dct_1024_d800_largect.dir/bench_table6_dct_1024_d800_largect.cc.o"
  "CMakeFiles/bench_table6_dct_1024_d800_largect.dir/bench_table6_dct_1024_d800_largect.cc.o.d"
  "bench_table6_dct_1024_d800_largect"
  "bench_table6_dct_1024_d800_largect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_dct_1024_d800_largect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table6_dct_1024_d800_largect.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_table6_dct_1024_d800_largect.

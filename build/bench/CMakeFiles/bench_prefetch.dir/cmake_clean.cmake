file(REMOVE_RECURSE
  "CMakeFiles/bench_prefetch.dir/bench_prefetch.cc.o"
  "CMakeFiles/bench_prefetch.dir/bench_prefetch.cc.o.d"
  "bench_prefetch"
  "bench_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_designpoints.dir/bench_table2_designpoints.cc.o"
  "CMakeFiles/bench_table2_designpoints.dir/bench_table2_designpoints.cc.o.d"
  "bench_table2_designpoints"
  "bench_table2_designpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_designpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

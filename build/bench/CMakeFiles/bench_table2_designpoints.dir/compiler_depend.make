# Empty compiler generated dependencies file for bench_table2_designpoints.
# This may be replaced when dependencies are built.

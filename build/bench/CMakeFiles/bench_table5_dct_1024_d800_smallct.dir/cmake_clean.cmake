file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_dct_1024_d800_smallct.dir/bench_table5_dct_1024_d800_smallct.cc.o"
  "CMakeFiles/bench_table5_dct_1024_d800_smallct.dir/bench_table5_dct_1024_d800_smallct.cc.o.d"
  "bench_table5_dct_1024_d800_smallct"
  "bench_table5_dct_1024_d800_smallct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_dct_1024_d800_smallct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

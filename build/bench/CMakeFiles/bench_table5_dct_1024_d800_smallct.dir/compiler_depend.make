# Empty compiler generated dependencies file for bench_table5_dct_1024_d800_smallct.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latency_model.dir/bench_fig4_latency_model.cc.o"
  "CMakeFiles/bench_fig4_latency_model.dir/bench_fig4_latency_model.cc.o.d"
  "bench_fig4_latency_model"
  "bench_fig4_latency_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_dct_1024_d100_largect.dir/bench_table8_dct_1024_d100_largect.cc.o"
  "CMakeFiles/bench_table8_dct_1024_d100_largect.dir/bench_table8_dct_1024_d100_largect.cc.o.d"
  "bench_table8_dct_1024_d100_largect"
  "bench_table8_dct_1024_d100_largect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_dct_1024_d100_largect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

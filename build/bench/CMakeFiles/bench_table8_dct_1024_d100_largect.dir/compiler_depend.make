# Empty compiler generated dependencies file for bench_table8_dct_1024_d100_largect.
# This may be replaced when dependencies are built.

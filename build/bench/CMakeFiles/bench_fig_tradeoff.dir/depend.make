# Empty dependencies file for bench_fig_tradeoff.
# This may be replaced when dependencies are built.

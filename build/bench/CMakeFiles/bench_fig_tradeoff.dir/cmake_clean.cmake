file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_tradeoff.dir/bench_fig_tradeoff.cc.o"
  "CMakeFiles/bench_fig_tradeoff.dir/bench_fig_tradeoff.cc.o.d"
  "bench_fig_tradeoff"
  "bench_fig_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

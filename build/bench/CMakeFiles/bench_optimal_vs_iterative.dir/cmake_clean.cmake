file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_vs_iterative.dir/bench_optimal_vs_iterative.cc.o"
  "CMakeFiles/bench_optimal_vs_iterative.dir/bench_optimal_vs_iterative.cc.o.d"
  "bench_optimal_vs_iterative"
  "bench_optimal_vs_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_vs_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

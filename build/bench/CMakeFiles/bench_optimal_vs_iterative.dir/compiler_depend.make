# Empty compiler generated dependencies file for bench_optimal_vs_iterative.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_memory_model.dir/bench_fig3_memory_model.cc.o"
  "CMakeFiles/bench_fig3_memory_model.dir/bench_fig3_memory_model.cc.o.d"
  "bench_fig3_memory_model"
  "bench_fig3_memory_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_memory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

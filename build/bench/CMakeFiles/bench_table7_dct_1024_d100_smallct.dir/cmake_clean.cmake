file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_dct_1024_d100_smallct.dir/bench_table7_dct_1024_d100_smallct.cc.o"
  "CMakeFiles/bench_table7_dct_1024_d100_smallct.dir/bench_table7_dct_1024_d100_smallct.cc.o.d"
  "bench_table7_dct_1024_d100_smallct"
  "bench_table7_dct_1024_d100_smallct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_dct_1024_d100_smallct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

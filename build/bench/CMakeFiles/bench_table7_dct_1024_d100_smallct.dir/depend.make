# Empty dependencies file for bench_table7_dct_1024_d100_smallct.
# This may be replaced when dependencies are built.

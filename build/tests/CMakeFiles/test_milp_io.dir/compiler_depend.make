# Empty compiler generated dependencies file for test_milp_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_milp_io.dir/test_milp_io.cpp.o"
  "CMakeFiles/test_milp_io.dir/test_milp_io.cpp.o.d"
  "test_milp_io"
  "test_milp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

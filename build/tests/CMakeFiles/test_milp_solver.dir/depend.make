# Empty dependencies file for test_milp_solver.
# This may be replaced when dependencies are built.

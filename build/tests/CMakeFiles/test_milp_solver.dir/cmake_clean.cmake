file(REMOVE_RECURSE
  "CMakeFiles/test_milp_solver.dir/test_milp_solver.cpp.o"
  "CMakeFiles/test_milp_solver.dir/test_milp_solver.cpp.o.d"
  "test_milp_solver"
  "test_milp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_tg_format.dir/test_tg_format.cpp.o"
  "CMakeFiles/test_tg_format.dir/test_tg_format.cpp.o.d"
  "test_tg_format"
  "test_tg_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tg_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

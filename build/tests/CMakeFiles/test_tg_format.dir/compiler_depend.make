# Empty compiler generated dependencies file for test_tg_format.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_core_solution.
# This may be replaced when dependencies are built.

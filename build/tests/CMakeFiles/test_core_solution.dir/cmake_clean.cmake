file(REMOVE_RECURSE
  "CMakeFiles/test_core_solution.dir/test_core_solution.cpp.o"
  "CMakeFiles/test_core_solution.dir/test_core_solution.cpp.o.d"
  "test_core_solution"
  "test_core_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_milp_expr.dir/test_milp_expr.cpp.o"
  "CMakeFiles/test_milp_expr.dir/test_milp_expr.cpp.o.d"
  "test_milp_expr"
  "test_milp_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

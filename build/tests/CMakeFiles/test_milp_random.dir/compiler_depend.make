# Empty compiler generated dependencies file for test_milp_random.
# This may be replaced when dependencies are built.

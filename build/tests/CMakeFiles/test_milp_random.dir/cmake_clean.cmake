file(REMOVE_RECURSE
  "CMakeFiles/test_milp_random.dir/test_milp_random.cpp.o"
  "CMakeFiles/test_milp_random.dir/test_milp_random.cpp.o.d"
  "test_milp_random"
  "test_milp_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_milp_propagation.
# This may be replaced when dependencies are built.

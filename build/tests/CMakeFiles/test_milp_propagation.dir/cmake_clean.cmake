file(REMOVE_RECURSE
  "CMakeFiles/test_milp_propagation.dir/test_milp_propagation.cpp.o"
  "CMakeFiles/test_milp_propagation.dir/test_milp_propagation.cpp.o.d"
  "test_milp_propagation"
  "test_milp_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

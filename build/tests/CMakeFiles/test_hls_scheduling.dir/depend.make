# Empty dependencies file for test_hls_scheduling.
# This may be replaced when dependencies are built.

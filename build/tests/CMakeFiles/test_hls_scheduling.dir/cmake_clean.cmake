file(REMOVE_RECURSE
  "CMakeFiles/test_hls_scheduling.dir/test_hls_scheduling.cpp.o"
  "CMakeFiles/test_hls_scheduling.dir/test_hls_scheduling.cpp.o.d"
  "test_hls_scheduling"
  "test_hls_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

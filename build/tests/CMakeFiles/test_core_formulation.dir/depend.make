# Empty dependencies file for test_core_formulation.
# This may be replaced when dependencies are built.

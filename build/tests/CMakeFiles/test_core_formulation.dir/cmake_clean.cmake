file(REMOVE_RECURSE
  "CMakeFiles/test_core_formulation.dir/test_core_formulation.cpp.o"
  "CMakeFiles/test_core_formulation.dir/test_core_formulation.cpp.o.d"
  "test_core_formulation"
  "test_core_formulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

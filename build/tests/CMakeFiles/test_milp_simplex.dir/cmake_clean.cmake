file(REMOVE_RECURSE
  "CMakeFiles/test_milp_simplex.dir/test_milp_simplex.cpp.o"
  "CMakeFiles/test_milp_simplex.dir/test_milp_simplex.cpp.o.d"
  "test_milp_simplex"
  "test_milp_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sparcs_hls.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sparcs_hls.dir/design_point_gen.cpp.o"
  "CMakeFiles/sparcs_hls.dir/design_point_gen.cpp.o.d"
  "CMakeFiles/sparcs_hls.dir/dfg.cpp.o"
  "CMakeFiles/sparcs_hls.dir/dfg.cpp.o.d"
  "CMakeFiles/sparcs_hls.dir/module_library.cpp.o"
  "CMakeFiles/sparcs_hls.dir/module_library.cpp.o.d"
  "CMakeFiles/sparcs_hls.dir/scheduler.cpp.o"
  "CMakeFiles/sparcs_hls.dir/scheduler.cpp.o.d"
  "libsparcs_hls.a"
  "libsparcs_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsparcs_hls.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/design_point_gen.cpp" "src/hls/CMakeFiles/sparcs_hls.dir/design_point_gen.cpp.o" "gcc" "src/hls/CMakeFiles/sparcs_hls.dir/design_point_gen.cpp.o.d"
  "/root/repo/src/hls/dfg.cpp" "src/hls/CMakeFiles/sparcs_hls.dir/dfg.cpp.o" "gcc" "src/hls/CMakeFiles/sparcs_hls.dir/dfg.cpp.o.d"
  "/root/repo/src/hls/module_library.cpp" "src/hls/CMakeFiles/sparcs_hls.dir/module_library.cpp.o" "gcc" "src/hls/CMakeFiles/sparcs_hls.dir/module_library.cpp.o.d"
  "/root/repo/src/hls/scheduler.cpp" "src/hls/CMakeFiles/sparcs_hls.dir/scheduler.cpp.o" "gcc" "src/hls/CMakeFiles/sparcs_hls.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sparcs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sparcs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

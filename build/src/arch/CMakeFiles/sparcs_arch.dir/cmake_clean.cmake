file(REMOVE_RECURSE
  "CMakeFiles/sparcs_arch.dir/device.cpp.o"
  "CMakeFiles/sparcs_arch.dir/device.cpp.o.d"
  "libsparcs_arch.a"
  "libsparcs_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

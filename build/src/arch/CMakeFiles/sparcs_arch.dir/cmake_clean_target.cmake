file(REMOVE_RECURSE
  "libsparcs_arch.a"
)

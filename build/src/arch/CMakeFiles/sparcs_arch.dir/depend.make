# Empty dependencies file for sparcs_arch.
# This may be replaced when dependencies are built.

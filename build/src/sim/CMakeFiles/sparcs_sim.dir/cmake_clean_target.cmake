file(REMOVE_RECURSE
  "libsparcs_sim.a"
)

# Empty dependencies file for sparcs_sim.
# This may be replaced when dependencies are built.

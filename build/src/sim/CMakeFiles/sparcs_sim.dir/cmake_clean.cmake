file(REMOVE_RECURSE
  "CMakeFiles/sparcs_sim.dir/executor.cpp.o"
  "CMakeFiles/sparcs_sim.dir/executor.cpp.o.d"
  "libsparcs_sim.a"
  "libsparcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsparcs_support.a"
)

# Empty compiler generated dependencies file for sparcs_support.
# This may be replaced when dependencies are built.

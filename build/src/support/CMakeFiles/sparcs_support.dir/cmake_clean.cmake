file(REMOVE_RECURSE
  "CMakeFiles/sparcs_support.dir/error.cpp.o"
  "CMakeFiles/sparcs_support.dir/error.cpp.o.d"
  "CMakeFiles/sparcs_support.dir/logging.cpp.o"
  "CMakeFiles/sparcs_support.dir/logging.cpp.o.d"
  "CMakeFiles/sparcs_support.dir/rng.cpp.o"
  "CMakeFiles/sparcs_support.dir/rng.cpp.o.d"
  "CMakeFiles/sparcs_support.dir/strings.cpp.o"
  "CMakeFiles/sparcs_support.dir/strings.cpp.o.d"
  "libsparcs_support.a"
  "libsparcs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

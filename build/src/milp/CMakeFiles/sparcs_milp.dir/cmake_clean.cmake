file(REMOVE_RECURSE
  "CMakeFiles/sparcs_milp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/sparcs_milp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/checker.cpp.o"
  "CMakeFiles/sparcs_milp.dir/checker.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/compiled.cpp.o"
  "CMakeFiles/sparcs_milp.dir/compiled.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/expr.cpp.o"
  "CMakeFiles/sparcs_milp.dir/expr.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/lp_reader.cpp.o"
  "CMakeFiles/sparcs_milp.dir/lp_reader.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/lp_writer.cpp.o"
  "CMakeFiles/sparcs_milp.dir/lp_writer.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/model.cpp.o"
  "CMakeFiles/sparcs_milp.dir/model.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/presolve.cpp.o"
  "CMakeFiles/sparcs_milp.dir/presolve.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/propagation.cpp.o"
  "CMakeFiles/sparcs_milp.dir/propagation.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/simplex.cpp.o"
  "CMakeFiles/sparcs_milp.dir/simplex.cpp.o.d"
  "CMakeFiles/sparcs_milp.dir/solver.cpp.o"
  "CMakeFiles/sparcs_milp.dir/solver.cpp.o.d"
  "libsparcs_milp.a"
  "libsparcs_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

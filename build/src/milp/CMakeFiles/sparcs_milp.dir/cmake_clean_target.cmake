file(REMOVE_RECURSE
  "libsparcs_milp.a"
)

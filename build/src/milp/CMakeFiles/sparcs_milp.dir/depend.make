# Empty dependencies file for sparcs_milp.
# This may be replaced when dependencies are built.

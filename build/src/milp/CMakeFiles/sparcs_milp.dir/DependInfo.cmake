
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/branch_and_bound.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/branch_and_bound.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/milp/checker.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/checker.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/checker.cpp.o.d"
  "/root/repo/src/milp/compiled.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/compiled.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/compiled.cpp.o.d"
  "/root/repo/src/milp/expr.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/expr.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/expr.cpp.o.d"
  "/root/repo/src/milp/lp_reader.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/lp_reader.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/lp_reader.cpp.o.d"
  "/root/repo/src/milp/lp_writer.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/lp_writer.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/lp_writer.cpp.o.d"
  "/root/repo/src/milp/model.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/model.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/model.cpp.o.d"
  "/root/repo/src/milp/presolve.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/presolve.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/presolve.cpp.o.d"
  "/root/repo/src/milp/propagation.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/propagation.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/propagation.cpp.o.d"
  "/root/repo/src/milp/simplex.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/simplex.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/simplex.cpp.o.d"
  "/root/repo/src/milp/solver.cpp" "src/milp/CMakeFiles/sparcs_milp.dir/solver.cpp.o" "gcc" "src/milp/CMakeFiles/sparcs_milp.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sparcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

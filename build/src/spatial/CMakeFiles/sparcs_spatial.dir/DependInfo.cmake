
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/flow.cpp" "src/spatial/CMakeFiles/sparcs_spatial.dir/flow.cpp.o" "gcc" "src/spatial/CMakeFiles/sparcs_spatial.dir/flow.cpp.o.d"
  "/root/repo/src/spatial/fm_spatial.cpp" "src/spatial/CMakeFiles/sparcs_spatial.dir/fm_spatial.cpp.o" "gcc" "src/spatial/CMakeFiles/sparcs_spatial.dir/fm_spatial.cpp.o.d"
  "/root/repo/src/spatial/ilp_spatial.cpp" "src/spatial/CMakeFiles/sparcs_spatial.dir/ilp_spatial.cpp.o" "gcc" "src/spatial/CMakeFiles/sparcs_spatial.dir/ilp_spatial.cpp.o.d"
  "/root/repo/src/spatial/netlist.cpp" "src/spatial/CMakeFiles/sparcs_spatial.dir/netlist.cpp.o" "gcc" "src/spatial/CMakeFiles/sparcs_spatial.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sparcs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sparcs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sparcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/sparcs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sparcs_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

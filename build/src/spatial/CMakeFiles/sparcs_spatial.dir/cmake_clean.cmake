file(REMOVE_RECURSE
  "CMakeFiles/sparcs_spatial.dir/flow.cpp.o"
  "CMakeFiles/sparcs_spatial.dir/flow.cpp.o.d"
  "CMakeFiles/sparcs_spatial.dir/fm_spatial.cpp.o"
  "CMakeFiles/sparcs_spatial.dir/fm_spatial.cpp.o.d"
  "CMakeFiles/sparcs_spatial.dir/ilp_spatial.cpp.o"
  "CMakeFiles/sparcs_spatial.dir/ilp_spatial.cpp.o.d"
  "CMakeFiles/sparcs_spatial.dir/netlist.cpp.o"
  "CMakeFiles/sparcs_spatial.dir/netlist.cpp.o.d"
  "libsparcs_spatial.a"
  "libsparcs_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

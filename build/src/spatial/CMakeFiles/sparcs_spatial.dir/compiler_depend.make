# Empty compiler generated dependencies file for sparcs_spatial.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsparcs_spatial.a"
)

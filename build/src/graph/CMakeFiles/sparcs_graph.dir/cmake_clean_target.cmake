file(REMOVE_RECURSE
  "libsparcs_graph.a"
)

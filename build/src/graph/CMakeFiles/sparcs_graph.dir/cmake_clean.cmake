file(REMOVE_RECURSE
  "CMakeFiles/sparcs_graph.dir/algorithms.cpp.o"
  "CMakeFiles/sparcs_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/sparcs_graph.dir/task_graph.cpp.o"
  "CMakeFiles/sparcs_graph.dir/task_graph.cpp.o.d"
  "libsparcs_graph.a"
  "libsparcs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

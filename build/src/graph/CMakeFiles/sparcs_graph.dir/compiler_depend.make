# Empty compiler generated dependencies file for sparcs_graph.
# This may be replaced when dependencies are built.

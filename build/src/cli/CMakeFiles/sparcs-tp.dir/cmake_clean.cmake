file(REMOVE_RECURSE
  "CMakeFiles/sparcs-tp.dir/main.cpp.o"
  "CMakeFiles/sparcs-tp.dir/main.cpp.o.d"
  "sparcs-tp"
  "sparcs-tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs-tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

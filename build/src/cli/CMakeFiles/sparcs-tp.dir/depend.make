# Empty dependencies file for sparcs-tp.
# This may be replaced when dependencies are built.

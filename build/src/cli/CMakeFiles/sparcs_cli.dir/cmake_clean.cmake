file(REMOVE_RECURSE
  "CMakeFiles/sparcs_cli.dir/app.cpp.o"
  "CMakeFiles/sparcs_cli.dir/app.cpp.o.d"
  "libsparcs_cli.a"
  "libsparcs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsparcs_cli.a"
)

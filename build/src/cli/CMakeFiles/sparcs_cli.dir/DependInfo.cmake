
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/app.cpp" "src/cli/CMakeFiles/sparcs_cli.dir/app.cpp.o" "gcc" "src/cli/CMakeFiles/sparcs_cli.dir/app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sparcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sparcs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sparcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/sparcs_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sparcs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sparcs_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/sparcs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/sparcs_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sparcs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sparcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sparcs_cli.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/sparcs_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/sparcs_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/formulation.cpp" "src/core/CMakeFiles/sparcs_core.dir/formulation.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/formulation.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/sparcs_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/reduce_latency.cpp" "src/core/CMakeFiles/sparcs_core.dir/reduce_latency.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/reduce_latency.cpp.o.d"
  "/root/repo/src/core/refine_partitions.cpp" "src/core/CMakeFiles/sparcs_core.dir/refine_partitions.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/refine_partitions.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/core/CMakeFiles/sparcs_core.dir/solution.cpp.o" "gcc" "src/core/CMakeFiles/sparcs_core.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sparcs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sparcs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/sparcs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sparcs_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

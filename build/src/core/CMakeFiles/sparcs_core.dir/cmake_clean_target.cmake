file(REMOVE_RECURSE
  "libsparcs_core.a"
)

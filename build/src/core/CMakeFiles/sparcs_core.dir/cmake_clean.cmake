file(REMOVE_RECURSE
  "CMakeFiles/sparcs_core.dir/baselines.cpp.o"
  "CMakeFiles/sparcs_core.dir/baselines.cpp.o.d"
  "CMakeFiles/sparcs_core.dir/bounds.cpp.o"
  "CMakeFiles/sparcs_core.dir/bounds.cpp.o.d"
  "CMakeFiles/sparcs_core.dir/formulation.cpp.o"
  "CMakeFiles/sparcs_core.dir/formulation.cpp.o.d"
  "CMakeFiles/sparcs_core.dir/partitioner.cpp.o"
  "CMakeFiles/sparcs_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/sparcs_core.dir/reduce_latency.cpp.o"
  "CMakeFiles/sparcs_core.dir/reduce_latency.cpp.o.d"
  "CMakeFiles/sparcs_core.dir/refine_partitions.cpp.o"
  "CMakeFiles/sparcs_core.dir/refine_partitions.cpp.o.d"
  "CMakeFiles/sparcs_core.dir/solution.cpp.o"
  "CMakeFiles/sparcs_core.dir/solution.cpp.o.d"
  "libsparcs_core.a"
  "libsparcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

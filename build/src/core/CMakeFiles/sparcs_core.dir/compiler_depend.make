# Empty compiler generated dependencies file for sparcs_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsparcs_workloads.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sparcs_workloads.dir/ar_filter.cpp.o"
  "CMakeFiles/sparcs_workloads.dir/ar_filter.cpp.o.d"
  "CMakeFiles/sparcs_workloads.dir/dct.cpp.o"
  "CMakeFiles/sparcs_workloads.dir/dct.cpp.o.d"
  "CMakeFiles/sparcs_workloads.dir/ewf.cpp.o"
  "CMakeFiles/sparcs_workloads.dir/ewf.cpp.o.d"
  "CMakeFiles/sparcs_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/sparcs_workloads.dir/synthetic.cpp.o.d"
  "libsparcs_workloads.a"
  "libsparcs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sparcs_workloads.
# This may be replaced when dependencies are built.

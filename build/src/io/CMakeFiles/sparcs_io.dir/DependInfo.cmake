
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/sparcs_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/sparcs_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/dot.cpp" "src/io/CMakeFiles/sparcs_io.dir/dot.cpp.o" "gcc" "src/io/CMakeFiles/sparcs_io.dir/dot.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/sparcs_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/sparcs_io.dir/table.cpp.o.d"
  "/root/repo/src/io/tg_format.cpp" "src/io/CMakeFiles/sparcs_io.dir/tg_format.cpp.o" "gcc" "src/io/CMakeFiles/sparcs_io.dir/tg_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sparcs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sparcs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sparcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/sparcs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sparcs_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

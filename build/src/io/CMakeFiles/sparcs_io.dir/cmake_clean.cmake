file(REMOVE_RECURSE
  "CMakeFiles/sparcs_io.dir/csv.cpp.o"
  "CMakeFiles/sparcs_io.dir/csv.cpp.o.d"
  "CMakeFiles/sparcs_io.dir/dot.cpp.o"
  "CMakeFiles/sparcs_io.dir/dot.cpp.o.d"
  "CMakeFiles/sparcs_io.dir/table.cpp.o"
  "CMakeFiles/sparcs_io.dir/table.cpp.o.d"
  "CMakeFiles/sparcs_io.dir/tg_format.cpp.o"
  "CMakeFiles/sparcs_io.dir/tg_format.cpp.o.d"
  "libsparcs_io.a"
  "libsparcs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sparcs_io.
# This may be replaced when dependencies are built.

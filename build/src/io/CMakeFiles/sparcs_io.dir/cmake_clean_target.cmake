file(REMOVE_RECURSE
  "libsparcs_io.a"
)
